"""Tests for the 1-D locality orderings (RCB, inertial, RSB, SFC)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OrderingError
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_graph, perturbed_grid_mesh
from repro.graph.metrics import mean_edge_span
from repro.partition.inertial import InertialOrdering, inertial_order, principal_axis
from repro.partition.ordering import (
    IdentityOrdering,
    RandomOrdering,
    inverse,
    positions_from_order,
)
from repro.partition.rcb import RCBOrdering, rcb_labels, rcb_order
from repro.partition.sfc import (
    HilbertOrdering,
    MortonOrdering,
    hilbert_keys_2d,
    morton_keys,
    quantize_coords,
    sfc_order,
)
from repro.partition.spectral import (
    SpectralOrdering,
    fiedler_vector,
    rsb_order,
    spectral_order_flat,
)

ALL_METHODS = [
    RCBOrdering(),
    RCBOrdering(alternate_axes=True),
    InertialOrdering(),
    SpectralOrdering(leaf_size=32),
    SpectralOrdering(recursive=False),
    HilbertOrdering(),
    MortonOrdering(),
    IdentityOrdering(),
    RandomOrdering(seed=1),
]


@pytest.fixture(scope="module")
def mesh_graph():
    return perturbed_grid_mesh(15, 15, seed=8).graph


class TestOrderingBasics:
    def test_inverse_roundtrip(self):
        perm = np.array([2, 0, 3, 1])
        inv = inverse(perm)
        np.testing.assert_array_equal(perm[inv], np.arange(4))
        np.testing.assert_array_equal(inv[perm], np.arange(4))

    def test_positions_from_order(self):
        order = np.array([3, 1, 0, 2])  # vertex 3 first on the line
        perm = positions_from_order(order)
        assert perm[3] == 0 and perm[1] == 1 and perm[0] == 2 and perm[2] == 3

    @pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
    def test_every_method_returns_permutation(self, mesh_graph, method):
        perm = method(mesh_graph)
        n = mesh_graph.num_vertices
        assert perm.shape == (n,)
        assert np.array_equal(np.sort(perm), np.arange(n))

    @pytest.mark.parametrize(
        "method",
        [RCBOrdering(), InertialOrdering(), HilbertOrdering(), MortonOrdering(),
         SpectralOrdering(leaf_size=32)],
        ids=lambda m: m.name,
    )
    def test_locality_methods_beat_random(self, mesh_graph, method):
        span = mean_edge_span(mesh_graph, method(mesh_graph))
        rand = mean_edge_span(mesh_graph, RandomOrdering(seed=0)(mesh_graph))
        assert span < rand / 3.0

    @pytest.mark.parametrize(
        "method",
        [RCBOrdering(), InertialOrdering(), SpectralOrdering(leaf_size=32),
         HilbertOrdering(), MortonOrdering()],
        ids=lambda m: m.name,
    )
    def test_deterministic(self, mesh_graph, method):
        np.testing.assert_array_equal(method(mesh_graph), method(mesh_graph))

    def test_coordinate_methods_need_coords(self):
        abstract = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        for method in (RCBOrdering(), InertialOrdering(), HilbertOrdering()):
            with pytest.raises(OrderingError):
                method(abstract)

    def test_spectral_works_without_coords(self):
        abstract = CSRGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        perm = SpectralOrdering(leaf_size=8)(abstract)
        # A path's spectral order must be monotone along the path.
        seq = perm.tolist()
        assert seq == sorted(seq) or seq == sorted(seq, reverse=True)


class TestRCB:
    def test_median_split_sizes(self):
        g = grid_graph(4, 4)
        order = rcb_order(g)
        assert order.size == 16
        # First half of the order lies in one half-plane of the wide axis.
        xs = g.coords[order[:8], 0]
        assert xs.max() <= g.coords[order[8:], 0].min() + 1e-9

    def test_rcb_labels_power_of_two(self):
        g = grid_graph(4, 4)
        labels = rcb_labels(g, 4)
        np.testing.assert_array_equal(np.bincount(labels), [4, 4, 4, 4])

    def test_rcb_labels_rejects_zero_parts(self):
        with pytest.raises(OrderingError):
            rcb_labels(grid_graph(2, 2), 0)

    def test_handles_duplicate_coordinates(self):
        coords = np.zeros((6, 2))
        g = CSRGraph.from_edges(6, [(i, i + 1) for i in range(5)], coords=coords)
        perm = RCBOrdering()(g)
        assert np.array_equal(np.sort(perm), np.arange(6))

    def test_empty_graph(self):
        g = CSRGraph.from_edges(0, [], coords=np.zeros((0, 2)))
        assert rcb_order(g).size == 0

    def test_single_vertex(self):
        g = CSRGraph.from_edges(1, [], coords=np.zeros((1, 2)))
        np.testing.assert_array_equal(rcb_order(g), [0])


class TestInertial:
    def test_principal_axis_obvious_direction(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.1], [20.0, -0.1], [30.0, 0.0]])
        axis = principal_axis(pts)
        assert abs(axis[0]) > 0.99

    def test_principal_axis_degenerate(self):
        axis = principal_axis(np.zeros((5, 2)))
        np.testing.assert_allclose(axis, [1.0, 0.0])

    def test_rotated_domain_adapts(self):
        # A thin strip at 45 degrees: inertial splits along the strip.
        rng = np.random.default_rng(0)
        t = rng.uniform(0, 20, 200)
        pts = np.stack([t + rng.normal(0, 0.1, 200), t + rng.normal(0, 0.1, 200)], axis=1)
        edges = [(i, i + 1) for i in range(199)]
        g = CSRGraph.from_edges(200, edges, coords=pts)
        order = inertial_order(g)
        proj = (pts[order] @ np.array([1.0, 1.0])) / np.sqrt(2)
        # First half of the order projects below the second half.
        assert np.median(proj[:100]) < np.median(proj[100:])


class TestSpectral:
    def test_fiedler_path_monotone(self):
        g = CSRGraph.from_edges(10, [(i, i + 1) for i in range(9)])
        from repro.graph.ops import to_scipy

        vec = fiedler_vector(to_scipy(g), rng=np.random.default_rng(0))
        diffs = np.diff(vec)
        assert np.all(diffs > 0) or np.all(diffs < 0)

    def test_fiedler_rejects_single_vertex(self):
        from repro.graph.ops import to_scipy

        g = CSRGraph.from_edges(1, [])
        with pytest.raises(OrderingError):
            fiedler_vector(to_scipy(g), rng=np.random.default_rng(0))

    def test_rsb_handles_disconnected(self):
        g = CSRGraph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        order = rsb_order(g, leaf_size=4)
        assert np.array_equal(np.sort(order), np.arange(6))
        pos = inverse(positions_from_order(order))
        del pos
        # Components stay contiguous on the line.
        positions = positions_from_order(order)
        comp0 = sorted(positions[[0, 1, 2]])
        comp1 = sorted(positions[[3, 4, 5]])
        assert comp0 == [0, 1, 2] or comp0 == [3, 4, 5]
        assert comp1 != comp0

    def test_rsb_leaf_size_validation(self):
        with pytest.raises(OrderingError):
            rsb_order(grid_graph(3, 3), leaf_size=1)

    def test_flat_spectral_permutation(self, mesh_graph):
        order = spectral_order_flat(mesh_graph)
        assert np.array_equal(np.sort(order), np.arange(mesh_graph.num_vertices))

    def test_flat_handles_trivial(self):
        g = CSRGraph.from_edges(1, [])
        np.testing.assert_array_equal(spectral_order_flat(g), [0])


class TestSFC:
    def test_quantize_range(self):
        coords = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.25]])
        q = quantize_coords(coords, 4)
        assert q.min() >= 0 and q.max() <= 15

    def test_quantize_rejects_bad_bits(self):
        with pytest.raises(OrderingError):
            quantize_coords(np.zeros((2, 2)), 0)
        with pytest.raises(OrderingError):
            quantize_coords(np.zeros((2, 2)), 25)

    def test_quantize_degenerate_axis(self):
        coords = np.array([[0.0, 5.0], [1.0, 5.0]])
        q = quantize_coords(coords, 4)
        assert q[:, 1].max() == 0  # constant axis maps to 0

    def test_morton_2d_known_values(self):
        # Grid cell (x=1, y=0) -> key 1; (0,1) -> 2; (1,1) -> 3.
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        keys = morton_keys(coords, bits=1)
        np.testing.assert_array_equal(keys, [0, 1, 2, 3])

    def test_hilbert_2x2_is_curve(self):
        coords = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 1.0], [1.0, 0.0]])
        keys = hilbert_keys_2d(coords, bits=1)
        np.testing.assert_array_equal(keys, [0, 1, 2, 3])

    def test_hilbert_adjacency_property(self):
        # Consecutive Hilbert positions are neighboring grid cells.
        bits = 3
        side = 2**bits
        xs, ys = np.meshgrid(np.arange(side, dtype=float), np.arange(side, dtype=float))
        coords = np.stack([xs.ravel(), ys.ravel()], axis=1)
        keys = hilbert_keys_2d(coords, bits=bits)
        order = np.argsort(keys)
        pts = coords[order]
        steps = np.abs(np.diff(pts, axis=0)).sum(axis=1)
        np.testing.assert_allclose(steps, 1.0)  # unit Manhattan steps

    def test_morton_has_jumps_hilbert_does_not(self):
        bits = 4
        side = 2**bits
        xs, ys = np.meshgrid(np.arange(side, dtype=float), np.arange(side, dtype=float))
        coords = np.stack([xs.ravel(), ys.ravel()], axis=1)
        h = coords[np.argsort(hilbert_keys_2d(coords, bits=bits))]
        m = coords[np.argsort(morton_keys(coords, bits=bits))]
        h_steps = np.abs(np.diff(h, axis=0)).sum(axis=1)
        m_steps = np.abs(np.diff(m, axis=0)).sum(axis=1)
        assert h_steps.max() == 1.0
        assert m_steps.max() > 1.0

    def test_morton_3d(self):
        coords = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
        keys = morton_keys(coords, bits=2)
        assert keys[0] < keys[1]

    def test_hilbert_rejects_3d(self):
        with pytest.raises(OrderingError):
            hilbert_keys_2d(np.zeros((2, 3)))

    def test_sfc_order_bad_curve(self):
        with pytest.raises(OrderingError):
            sfc_order(grid_graph(2, 2), curve="peano")

    @given(st.integers(1, 6))
    @settings(max_examples=6, deadline=None)
    def test_hilbert_is_bijection_on_grid(self, bits):
        side = 2**bits
        xs, ys = np.meshgrid(np.arange(side, dtype=float), np.arange(side, dtype=float))
        coords = np.stack([xs.ravel(), ys.ravel()], axis=1)
        keys = hilbert_keys_2d(coords, bits=bits)
        assert np.unique(keys).size == side * side
        assert keys.max() == side * side - 1
