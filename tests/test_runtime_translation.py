"""Tests for the three translation-table mechanisms (Sec. 3.2, Fig. 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TranslationError
from repro.net.cluster import uniform_cluster
from repro.net.spmd import run_spmd
from repro.partition.intervals import partition_list
from repro.runtime.translation import (
    DistributedTranslationTable,
    IntervalTranslationTable,
    ReplicatedTranslationTable,
    table_home,
)


class TestIntervalTable:
    def test_matches_partition(self):
        part = partition_list(100, [0.27, 0.18, 0.34, 0.07, 0.14])
        table = IntervalTranslationTable(part)
        gi = np.arange(100)
        owner, local = table.dereference(gi)
        o2, l2 = part.dereference(gi)
        np.testing.assert_array_equal(owner, o2)
        np.testing.assert_array_equal(local, l2)

    def test_memory_is_2p(self):
        part = partition_list(1_000_000, np.ones(8))
        assert IntervalTranslationTable(part).memory_entries == 16

    def test_owner_of(self):
        part = partition_list(10, [0.5, 0.5])
        table = IntervalTranslationTable(part)
        np.testing.assert_array_equal(table.owner_of(np.array([0, 9])), [0, 1])


class TestReplicatedTable:
    def test_matches_partition(self):
        part = partition_list(50, [1, 2, 3], arrangement=[2, 0, 1])
        table = ReplicatedTranslationTable.from_partition(part)
        gi = np.arange(50)
        owner, local = table.dereference(gi)
        o2, l2 = part.dereference(gi)
        np.testing.assert_array_equal(owner, o2)
        np.testing.assert_array_equal(local, l2)

    def test_memory_is_2n(self):
        part = partition_list(1000, np.ones(4))
        table = ReplicatedTranslationTable.from_partition(part)
        assert table.memory_entries == 2000
        # The interval table is 250x smaller — the paper's memory argument.
        assert table.memory_entries > 100 * IntervalTranslationTable(part).memory_entries

    def test_out_of_range(self):
        table = ReplicatedTranslationTable.from_partition(partition_list(10, [1.0]))
        with pytest.raises(TranslationError):
            table.dereference(np.array([10]))

    def test_shape_validation(self):
        with pytest.raises(TranslationError):
            ReplicatedTranslationTable(np.zeros(3, np.intp), np.zeros(4, np.intp))


class TestTableHome:
    def test_block_distribution(self):
        homes = table_home(np.arange(10), 10, 2)
        np.testing.assert_array_equal(homes, [0] * 5 + [1] * 5)

    def test_uneven_blocks(self):
        homes = table_home(np.arange(10), 10, 3)
        np.testing.assert_array_equal(homes, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2])

    def test_last_rank_clamped(self):
        assert table_home(np.array([9]), 10, 4)[0] == 3

    def test_rejects_bad_params(self):
        with pytest.raises(TranslationError):
            table_home(np.array([0]), 0, 2)

    @given(n=st.integers(1, 500), p=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_all_indices_have_valid_home(self, n, p):
        homes = table_home(np.arange(n), n, p)
        assert homes.min() >= 0 and homes.max() < p
        # Block distribution is monotone non-decreasing.
        assert np.all(np.diff(homes) >= 0)


class TestDistributedTable:
    def test_local_block_contents(self):
        part = partition_list(20, [1, 1], arrangement=[1, 0])
        t0 = DistributedTranslationTable(part, 0)
        owner, local = t0.lookup_local(np.arange(0, 10))
        o2, l2 = part.dereference(np.arange(0, 10))
        np.testing.assert_array_equal(owner, o2)
        np.testing.assert_array_equal(local, l2)

    def test_lookup_outside_block_rejected(self):
        part = partition_list(20, [1, 1])
        t0 = DistributedTranslationTable(part, 0)
        with pytest.raises(TranslationError):
            t0.lookup_local(np.array([15]))

    def test_memory_split(self):
        part = partition_list(1000, np.ones(4))
        t = DistributedTranslationTable(part, 0)
        assert t.memory_entries == 500  # 2 * n/p

    def test_collective_dereference_matches_oracle(self):
        part = partition_list(60, [0.2, 0.5, 0.3], arrangement=[2, 0, 1])

        def fn(ctx):
            table = DistributedTranslationTable(part, ctx.rank)
            rng = np.random.default_rng(ctx.rank)
            queries = rng.integers(0, 60, size=15)
            owner, local = table.dereference_collective(ctx, queries)
            o2, l2 = part.dereference(queries)
            np.testing.assert_array_equal(owner, o2)
            np.testing.assert_array_equal(local, l2)
            return True

        res = run_spmd(uniform_cluster(3), fn)
        assert all(res.values)

    def test_collective_dereference_empty_queries(self):
        part = partition_list(30, np.ones(3))

        def fn(ctx):
            table = DistributedTranslationTable(part, ctx.rank)
            queries = (
                np.arange(5) if ctx.rank == 0 else np.empty(0, dtype=np.intp)
            )
            owner, _ = table.dereference_collective(ctx, queries)
            return owner.size

        res = run_spmd(uniform_cluster(3), fn)
        assert res.values == [5, 0, 0]

    def test_collective_requires_communication(self):
        """Dereferencing through the distributed table generates messages —
        the cost the interval table avoids (the paper's core argument)."""
        part = partition_list(40, [1, 1])

        def fn(ctx):
            table = DistributedTranslationTable(part, ctx.rank)
            # Rank 0 asks about an element whose table entry rank 1 holds.
            queries = np.array([35]) if ctx.rank == 0 else np.empty(0, np.intp)
            table.dereference_collective(ctx, queries)

        res = run_spmd(uniform_cluster(2), fn, trace=True)
        assert res.trace.message_count() > 0
