"""Tests for trace analysis and timeline rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.cluster import heterogeneous_cluster, uniform_cluster
from repro.net.message import Tags
from repro.net.report import analyze_trace, render_timeline
from repro.net.spmd import run_spmd
from repro.net.trace import TraceEvent, TraceLog


def traced_run(cluster):
    def fn(ctx):
        ctx.compute(1.0)
        if ctx.rank == 0:
            ctx.send(1, np.zeros(1000), Tags.USER_BASE)
        elif ctx.rank == 1:
            ctx.recv(0, Tags.USER_BASE)
        ctx.barrier()

    return run_spmd(cluster, fn, trace=True)


class TestAnalyzeTrace:
    def test_breakdown_totals(self):
        res = traced_run(uniform_cluster(3))
        report = analyze_trace(res.trace, res.clocks)
        assert len(report.breakdowns) == 3
        for b in report.breakdowns:
            assert b.total == res.clocks[b.rank]
            assert b.accounted <= b.total + 1e-9
            assert 0.0 <= b.utilization() <= 1.0
        assert report.makespan == res.makespan

    def test_compute_time_attributed(self):
        res = traced_run(uniform_cluster(2))
        report = analyze_trace(res.trace, res.clocks)
        for b in report.breakdowns:
            assert b.compute == pytest.approx(1.0)

    def test_slow_rank_lower_utilization_for_fast_peer(self):
        res = run_spmd(
            heterogeneous_cluster([1.0, 0.25]),
            lambda ctx: (ctx.compute(1.0), ctx.barrier()),
            trace=True,
        )
        report = analyze_trace(res.trace, res.clocks)
        # The fast rank waits at the barrier -> lower compute fraction.
        assert report.breakdowns[0].utilization() < report.breakdowns[1].utilization()
        assert report.mean_utilization < 1.0

    def test_traffic_by_tag(self):
        res = traced_run(uniform_cluster(2))
        report = analyze_trace(res.trace, res.clocks)
        assert report.messages_by_tag.get(Tags.USER_BASE) == 1
        assert report.bytes_by_tag[Tags.USER_BASE] > 1000

    def test_to_text_renders(self):
        res = traced_run(uniform_cluster(2))
        text = analyze_trace(res.trace, res.clocks).to_text()
        assert "Per-rank virtual time breakdown" in text
        assert "Traffic by message tag" in text

    def test_empty_trace_with_time_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_trace(TraceLog(enabled=False), [1.0, 2.0])

    def test_empty_run_ok(self):
        report = analyze_trace(TraceLog(), [0.0, 0.0])
        assert report.makespan == 0.0
        assert report.mean_utilization == 0.0


class TestRenderTimeline:
    def test_basic_shape(self):
        res = traced_run(uniform_cluster(3))
        art = render_timeline(res.trace, res.clocks, width=40)
        lines = art.splitlines()
        assert len(lines) == 4  # 3 ranks + axis
        assert all(line.startswith("rank") for line in lines[:3])
        assert "#" in art  # compute buckets visible

    def test_unbalanced_run_shows_gap(self):
        res = run_spmd(
            heterogeneous_cluster([1.0, 0.25]),
            lambda ctx: ctx.compute(1.0),
            trace=True,
        )
        art = render_timeline(res.trace, res.clocks, width=40)
        fast, slow = art.splitlines()[:2]
        # The fast rank's row ends early (trailing spaces inside the frame).
        assert fast.rstrip("|").rstrip().count("#") < slow.count("#")

    def test_width_validation(self):
        with pytest.raises(ConfigurationError):
            render_timeline(TraceLog(), [1.0], width=2)

    def test_empty_timeline(self):
        assert render_timeline(TraceLog(), [0.0]) == "(empty timeline)"

    def test_synthetic_comm_glyphs(self):
        log = TraceLog()
        log.record(TraceEvent("send", 0, 0.0, 0.5, nbytes=10))
        log.record(TraceEvent("compute", 0, 0.5, 1.0))
        art = render_timeline(log, [1.0], width=10)
        row = art.splitlines()[0]
        assert "~" in row and "#" in row


class TestJoinMidrunClocks:
    """Regression: analyze_trace must not drop a joined rank's traffic."""

    def _joined_run(self):
        from repro.graph.generators import paper_mesh
        from repro.net.loadmodel import MembershipEvent, MembershipTrace
        from repro.runtime.program import ProgramConfig, run_program

        graph = paper_mesh(64)
        y0 = np.linspace(0.0, 1.0, graph.num_vertices)
        trace = MembershipTrace(
            3, [MembershipEvent(0.01, "join", 2)], initially_inactive=[2]
        )
        config = ProgramConfig(
            iterations=6,
            membership=trace,
            load_balance="centralized",
            initial_capabilities="equal",
            trace=True,
        )
        return run_program(graph, uniform_cluster(3), config, y0=y0)

    def test_truncated_clocks_raise(self):
        report = self._joined_run()
        assert any(ev.rank == 2 for ev in report.trace)  # the join happened
        with pytest.raises(ConfigurationError, match="rank 2"):
            analyze_trace(report.trace, list(report.clocks)[:2])

    def test_full_clocks_keep_joiner_traffic(self):
        report = self._joined_run()
        util = analyze_trace(report.trace, list(report.clocks))
        joiner = util.breakdowns[2]
        assert joiner.compute > 0.0  # the joiner's work is accounted

    def test_synthetic_out_of_range_event_named(self):
        log = TraceLog()
        log.record(TraceEvent("compute", 5, 0.0, 1.0))
        with pytest.raises(ConfigurationError, match="rank 5"):
            analyze_trace(log, [1.0, 1.0])
