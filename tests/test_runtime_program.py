"""Integration tests: the full four-phase program against the oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import paper_mesh
from repro.net.cluster import (
    adaptive_cluster,
    sun4_cluster,
    uniform_cluster,
)
from repro.net.loadmodel import ConstantLoad, StepLoad
from repro.partition.ordering import IdentityOrdering, RandomOrdering
from repro.partition.sfc import HilbertOrdering
from repro.partition.spectral import SpectralOrdering
from repro.runtime.adaptive import LoadBalanceConfig
from repro.runtime.kernels import run_sequential
from repro.runtime.program import ProgramConfig, run_program


@pytest.fixture(scope="module")
def workload():
    g = paper_mesh(800, seed=21)
    y0 = np.random.default_rng(0).uniform(0, 100, g.num_vertices)
    return g, y0


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ["sort1", "sort2", "simple"])
    def test_matches_oracle_all_strategies(self, workload, strategy):
        g, y0 = workload
        oracle = run_sequential(g, y0, 12)
        rep = run_program(
            g, sun4_cluster(3), ProgramConfig(iterations=12, strategy=strategy),
            y0=y0,
        )
        np.testing.assert_allclose(rep.values, oracle, atol=1e-9)

    @pytest.mark.parametrize("p", [1, 2, 4, 5])
    def test_matches_oracle_all_cluster_sizes(self, workload, p):
        g, y0 = workload
        oracle = run_sequential(g, y0, 10)
        rep = run_program(
            g, sun4_cluster(p), ProgramConfig(iterations=10), y0=y0
        )
        np.testing.assert_allclose(rep.values, oracle, atol=1e-9)

    @pytest.mark.parametrize(
        "ordering",
        [IdentityOrdering(), RandomOrdering(seed=4), HilbertOrdering(),
         SpectralOrdering(leaf_size=64)],
        ids=lambda o: o.name,
    )
    def test_matches_oracle_any_ordering(self, workload, ordering):
        g, y0 = workload
        oracle = run_sequential(g, y0, 8)
        rep = run_program(
            g, uniform_cluster(3),
            ProgramConfig(iterations=8, ordering=ordering), y0=y0,
        )
        np.testing.assert_allclose(rep.values, oracle, atol=1e-9)

    def test_matches_oracle_with_load_balancing(self, workload):
        g, y0 = workload
        oracle = run_sequential(g, y0, 30)
        cl = adaptive_cluster(3, loaded_rank=0, competing_load=2.0)
        rep = run_program(
            g, cl,
            ProgramConfig(
                iterations=30,
                initial_capabilities="equal",
                load_balance=LoadBalanceConfig(check_interval=10),
            ),
            y0=y0,
        )
        np.testing.assert_allclose(rep.values, oracle, atol=1e-9)

    def test_default_y0(self, workload):
        g, _ = workload
        rep = run_program(g, uniform_cluster(2), ProgramConfig(iterations=3))
        oracle = run_sequential(g, np.arange(g.num_vertices, dtype=float), 3)
        np.testing.assert_allclose(rep.values, oracle, atol=1e-9)


class TestPerformanceShape:
    def test_more_machines_faster(self):
        # Needs a compute-dominated workload; at tiny sizes communication
        # overheads legitimately flatten the curve.
        g = paper_mesh(3000, seed=23)
        y0 = np.random.default_rng(1).uniform(0, 100, g.num_vertices)
        times = []
        for p in (1, 2, 4):
            rep = run_program(
                g, uniform_cluster(p), ProgramConfig(iterations=10), y0=y0
            )
            times.append(rep.makespan)
        assert times[0] > times[1] > times[2]

    def test_speed_proportional_split(self, workload):
        g, y0 = workload
        rep = run_program(
            g, sun4_cluster(4), ProgramConfig(iterations=5), y0=y0
        )
        sizes = rep.partition_final.sizes().astype(float)
        speeds = sun4_cluster(4).speeds
        shares = sizes / sizes.sum()
        fair = speeds / speeds.sum()
        np.testing.assert_allclose(shares, fair, atol=0.01)

    def test_loaded_machine_slows_without_lb(self, workload):
        g, y0 = workload
        base = run_program(
            g, uniform_cluster(3),
            ProgramConfig(iterations=15, initial_capabilities="equal"), y0=y0,
        )
        loaded = run_program(
            g, uniform_cluster(3).with_load(0, ConstantLoad(2.0)),
            ProgramConfig(iterations=15, initial_capabilities="equal"), y0=y0,
        )
        assert loaded.makespan > base.makespan * 1.5

    def test_lb_improves_adaptive_run(self, workload):
        g, y0 = workload
        cl = adaptive_cluster(4, loaded_rank=0, competing_load=2.0)
        cfg = dict(iterations=40, initial_capabilities="equal")
        no_lb = run_program(g, cl, ProgramConfig(**cfg), y0=y0)
        lb = run_program(
            g, cl,
            ProgramConfig(**cfg, load_balance=LoadBalanceConfig(check_interval=10)),
            y0=y0,
        )
        assert lb.makespan < no_lb.makespan
        assert lb.num_remaps >= 1
        assert lb.lb_check_time > 0.0
        assert lb.remap_time > 0.0

    def test_check_cost_much_smaller_than_remap(self, workload):
        """Table 5's shape: per-check cost is an order of magnitude below
        the remap cost."""
        g, y0 = workload
        cl = adaptive_cluster(4, loaded_rank=0, competing_load=2.0)
        rep = run_program(
            g, cl,
            ProgramConfig(
                iterations=40,
                initial_capabilities="equal",
                load_balance=LoadBalanceConfig(check_interval=10),
            ),
            y0=y0,
        )
        stats = rep.rank_stats[0]
        per_check = rep.lb_check_time / max(stats.num_checks, 1)
        per_remap = rep.remap_time / max(stats.num_remaps, 1)
        assert per_check < per_remap

    def test_stable_environment_no_remap(self, workload):
        g, y0 = workload
        rep = run_program(
            g, uniform_cluster(3),
            ProgramConfig(
                iterations=30,
                load_balance=LoadBalanceConfig(check_interval=10),
            ),
            y0=y0,
        )
        assert rep.num_remaps == 0

    def test_load_appearing_mid_run_triggers_remap(self, workload):
        g, y0 = workload
        cl = uniform_cluster(3).with_load(1, StepLoad([(0, 0.0), (0.05, 3.0)]))
        rep = run_program(
            g, cl,
            ProgramConfig(
                iterations=60,
                load_balance=LoadBalanceConfig(check_interval=10),
            ),
            y0=y0,
        )
        assert rep.num_remaps >= 1
        oracle = run_sequential(g, y0, 60)
        np.testing.assert_allclose(rep.values, oracle, atol=1e-9)


class TestReportContents:
    def test_rank_stats_complete(self, workload):
        g, y0 = workload
        rep = run_program(g, sun4_cluster(3), ProgramConfig(iterations=5), y0=y0)
        assert len(rep.rank_stats) == 3
        for s in rep.rank_stats:
            assert s.compute_time > 0
            assert s.inspector_time > 0
            assert s.final_clock > 0
        assert sum(s.n_local_final for s in rep.rank_stats) == g.num_vertices

    def test_trace_captured_when_enabled(self, workload):
        g, y0 = workload
        rep = run_program(
            g, uniform_cluster(2), ProgramConfig(iterations=3, trace=True), y0=y0
        )
        assert rep.trace is not None
        assert len(rep.trace.events(kind="send")) > 0

    def test_total_work_accounting(self, workload):
        g, y0 = workload
        cfg = ProgramConfig(iterations=7)
        rep = run_program(g, uniform_cluster(1), cfg, y0=y0)
        assert rep.total_work_seconds == pytest.approx(
            7 * rep.work_per_iteration
        )

    def test_makespan_is_max_clock(self, workload):
        g, y0 = workload
        rep = run_program(g, sun4_cluster(3), ProgramConfig(iterations=4), y0=y0)
        assert rep.makespan == max(rep.clocks)


class TestConfigValidation:
    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigurationError):
            ProgramConfig(iterations=0)

    def test_rejects_bad_capability_string(self, workload):
        g, _ = workload
        with pytest.raises(ConfigurationError):
            run_program(
                g, uniform_cluster(2),
                ProgramConfig(iterations=1, initial_capabilities="bogus"),
            )

    def test_rejects_wrong_capability_length(self, workload):
        g, _ = workload
        with pytest.raises(ConfigurationError):
            run_program(
                g, uniform_cluster(2),
                ProgramConfig(iterations=1, initial_capabilities=[1.0, 1.0, 1.0]),
            )

    def test_rejects_wrong_y0_shape(self, workload):
        g, _ = workload
        with pytest.raises(ConfigurationError):
            run_program(g, uniform_cluster(2), ProgramConfig(iterations=1),
                        y0=np.zeros(3))

    def test_explicit_capability_vector(self, workload):
        g, y0 = workload
        rep = run_program(
            g, uniform_cluster(2),
            ProgramConfig(iterations=3, initial_capabilities=[3.0, 1.0]),
            y0=y0,
        )
        sizes = rep.partition_final.sizes()
        assert sizes[0] > 2.5 * sizes[1]
