"""Tests for the communicator, collectives, and the SPMD runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RankFailedError
from repro.net.cluster import heterogeneous_cluster, uniform_cluster
from repro.net.comm import Communicator
from repro.net.loadmodel import ConstantLoad
from repro.net.message import Tags
from repro.net.network import SharedEthernet
from repro.net.spmd import SPMDRunner, run_spmd


def eth_cluster(n):
    return uniform_cluster(n, network_factory=SharedEthernet)


class TestPointToPoint:
    def test_send_recv_payload(self):
        def fn(ctx):
            if ctx.rank == 0:
                ctx.send(1, {"v": 42}, Tags.USER_BASE)
                return None
            return ctx.recv(0, Tags.USER_BASE)

        res = run_spmd(uniform_cluster(2), fn)
        assert res.values[1] == {"v": 42}

    def test_recv_advances_clock_past_arrival(self):
        def fn(ctx):
            if ctx.rank == 0:
                ctx.send(1, np.zeros(1000))
                return ctx.clock
            before = ctx.clock
            ctx.recv(0)
            return (before, ctx.clock)

        res = run_spmd(uniform_cluster(2), fn)
        before, after = res.values[1]
        assert before == 0.0
        assert after > 0.0  # latency + transfer reflected

    def test_sender_clock_advances_by_injection(self):
        def fn(ctx):
            if ctx.rank == 0:
                ctx.send(1, np.zeros(125_000))  # 1 MB at 1.25 MB/s = 0.8 s
                return ctx.clock
            ctx.recv(0)
            return ctx.clock

        res = run_spmd(uniform_cluster(2), fn)
        assert res.values[0] == pytest.approx(0.8, rel=0.1)
        assert res.values[1] > res.values[0]

    def test_send_invalid_rank(self):
        def fn(ctx):
            ctx.send(99, "boom")

        with pytest.raises(RankFailedError):
            run_spmd(uniform_cluster(2), fn)

    def test_self_send_allowed(self):
        def fn(ctx):
            ctx.send(ctx.rank, "self", 42)
            return ctx.recv(ctx.rank, 42)

        res = run_spmd(uniform_cluster(2), fn)
        assert res.values == ["self", "self"]

    def test_sendrecv_exchange(self):
        def fn(ctx):
            other = 1 - ctx.rank
            return ctx.sendrecv(other, f"from{ctx.rank}", other)

        res = run_spmd(uniform_cluster(2), fn)
        assert res.values == ["from1", "from0"]

    def test_probe(self):
        def fn(ctx):
            if ctx.rank == 0:
                ctx.send(1, "x", 7)
                return True
            ctx.recv(0, 7)  # ensure it arrived
            return ctx.probe(0, 7)

        res = run_spmd(uniform_cluster(2), fn)
        assert res.values[1] is False  # consumed


class TestCollectives:
    def test_barrier_synchronizes_clocks(self):
        def fn(ctx):
            ctx.compute(float(ctx.rank + 1))  # 1s, 2s, 3s
            ctx.barrier()
            return ctx.clock

        res = run_spmd(uniform_cluster(3), fn)
        assert max(res.values) - min(res.values) < 1e-12
        assert min(res.values) >= 3.0

    def test_bcast_values(self):
        def fn(ctx):
            return ctx.bcast("hello" if ctx.rank == 0 else None, root=0)

        res = run_spmd(eth_cluster(4), fn)
        assert res.values == ["hello"] * 4

    def test_bcast_nonzero_root(self):
        def fn(ctx):
            return ctx.bcast(ctx.rank if ctx.rank == 2 else None, root=2)

        res = run_spmd(uniform_cluster(3), fn)
        assert res.values == [2, 2, 2]

    def test_bcast_single_rank(self):
        res = run_spmd(uniform_cluster(1), lambda ctx: ctx.bcast("solo"))
        assert res.values == ["solo"]

    def test_gather_order(self):
        def fn(ctx):
            return ctx.gather(ctx.rank * 10, root=0)

        res = run_spmd(uniform_cluster(4), fn)
        assert res.values[0] == [0, 10, 20, 30]
        assert res.values[1] is None

    def test_allgather(self):
        res = run_spmd(uniform_cluster(3), lambda ctx: ctx.allgather(ctx.rank**2))
        assert all(v == [0, 1, 4] for v in res.values)

    def test_scatter(self):
        def fn(ctx):
            parts = [f"part{r}" for r in range(ctx.size)] if ctx.rank == 0 else None
            return ctx.scatter(parts, root=0)

        res = run_spmd(uniform_cluster(3), fn)
        assert res.values == ["part0", "part1", "part2"]

    def test_scatter_wrong_length(self):
        def fn(ctx):
            parts = ["only-one"] if ctx.rank == 0 else None
            return ctx.scatter(parts, root=0)

        with pytest.raises(RankFailedError):
            run_spmd(uniform_cluster(3), fn)

    def test_reduce_rank_order(self):
        def fn(ctx):
            return ctx.reduce(f"{ctx.rank}", lambda a, b: a + b, root=0)

        res = run_spmd(uniform_cluster(4), fn)
        assert res.values[0] == "0123"  # deterministic order

    def test_allreduce_sum(self):
        res = run_spmd(
            uniform_cluster(5), lambda ctx: ctx.allreduce(ctx.rank, lambda a, b: a + b)
        )
        assert res.values == [10] * 5

    def test_alltoallv_pattern(self):
        def fn(ctx):
            out = {d: ctx.rank * 100 + d for d in range(ctx.size) if d != ctx.rank}
            rec = ctx.alltoallv(out, [s for s in range(ctx.size) if s != ctx.rank])
            return {s: v for s, v in sorted(rec.items())}

        res = run_spmd(uniform_cluster(3), fn)
        assert res.values[0] == {1: 100, 2: 200}
        assert res.values[2] == {0: 2, 1: 102}

    def test_alltoallv_self_entry(self):
        def fn(ctx):
            out = {ctx.rank: "mine"}
            return ctx.alltoallv(out, [])

        res = run_spmd(uniform_cluster(2), fn)
        assert res.values[0] == {0: "mine"}

    def test_multicast_on_ethernet_traces_single_event(self):
        def fn(ctx):
            if ctx.rank == 0:
                ctx.multicast([1, 2, 3], "m", Tags.USER_BASE)
            else:
                ctx.recv(0, Tags.USER_BASE)

        res = run_spmd(eth_cluster(4), fn, trace=True)
        assert len(res.trace.events(kind="multicast")) == 1

    def test_multicast_fallback_unicasts(self):
        def fn(ctx):
            if ctx.rank == 0:
                ctx.multicast([1, 2], "m", Tags.USER_BASE)
            else:
                ctx.recv(0, Tags.USER_BASE)

        res = run_spmd(uniform_cluster(3), fn, trace=True)
        assert len(res.trace.events(kind="send")) == 1  # one traced event
        assert len(res.trace.events(kind="multicast")) == 0


class TestVirtualTime:
    def test_heterogeneous_compute(self):
        res = run_spmd(
            heterogeneous_cluster([1.0, 0.25]),
            lambda ctx: ctx.compute(1.0) or ctx.clock,
        )
        assert res.values[0] == pytest.approx(1.0)
        assert res.values[1] == pytest.approx(4.0)

    def test_loaded_processor(self):
        cl = uniform_cluster(2).with_load(1, ConstantLoad(3.0))
        res = run_spmd(cl, lambda ctx: ctx.compute(1.0) or ctx.clock)
        assert res.values[1] == pytest.approx(4.0)

    def test_compute_items(self):
        res = run_spmd(
            uniform_cluster(1),
            lambda ctx: ctx.compute_items(1000, 1e-3) or ctx.clock,
        )
        assert res.values[0] == pytest.approx(1.0)

    def test_charge_raw_seconds(self):
        res = run_spmd(
            heterogeneous_cluster([0.5]),
            lambda ctx: ctx.charge(2.0) or ctx.clock,
        )
        assert res.values[0] == pytest.approx(2.0)  # no speed scaling

    def test_charge_negative_rejected(self):
        with pytest.raises(RankFailedError):
            run_spmd(uniform_cluster(1), lambda ctx: ctx.charge(-1.0))

    def test_makespan_is_max_clock(self):
        res = run_spmd(
            heterogeneous_cluster([1.0, 0.5]),
            lambda ctx: ctx.compute(1.0),
        )
        assert res.makespan == pytest.approx(2.0)
        assert res.imbalance == pytest.approx(2.0 / 1.5)


class TestSPMDFailures:
    def test_rank_exception_propagates(self):
        def fn(ctx):
            if ctx.rank == 1:
                raise ValueError("rank 1 exploded")
            ctx.barrier()  # would deadlock without failure handling

        with pytest.raises(RankFailedError) as exc_info:
            run_spmd(uniform_cluster(3), fn)
        assert 1 in exc_info.value.failures
        assert isinstance(exc_info.value.failures[1], ValueError)

    def test_blocked_receiver_woken_on_peer_failure(self):
        def fn(ctx):
            if ctx.rank == 0:
                raise RuntimeError("sender died")
            ctx.recv(0)  # must not hang

        with pytest.raises(RankFailedError) as exc_info:
            run_spmd(uniform_cluster(2), fn)
        # Original error reported, not the secondary mailbox closure.
        assert any(
            isinstance(e, RuntimeError) for e in exc_info.value.failures.values()
        )

    def test_runner_reusable(self):
        runner = SPMDRunner(uniform_cluster(2))
        r1 = runner.run(lambda ctx: ctx.rank)
        r2 = runner.run(lambda ctx: ctx.rank * 2)
        assert r1.values == [0, 1]
        assert r2.values == [0, 2]

    def test_args_passed_through(self):
        res = run_spmd(uniform_cluster(2), lambda ctx, a, b=0: a + b + ctx.rank, 10, b=5)
        assert res.values == [15, 16]

    def test_context_bad_rank(self):
        comm = Communicator(uniform_cluster(2))
        with pytest.raises(Exception):
            comm.context(5)


class TestDegenerateAggregates:
    """SPMDResult.makespan/imbalance must never silently report balance."""

    def _result(self, clocks):
        from repro.net.spmd import SPMDResult
        from repro.net.trace import TraceLog

        n = max(len(clocks), 1)
        return SPMDResult(
            values=[None] * len(clocks),
            clocks=list(clocks),
            trace=TraceLog(enabled=False),
            cluster=uniform_cluster(n),
        )

    def test_no_ranks_raises(self):
        from repro.errors import ConfigurationError

        res = self._result([])
        with pytest.raises(ConfigurationError, match="no ranks"):
            res.imbalance
        with pytest.raises(ConfigurationError, match="no ranks"):
            res.makespan

    def test_all_zero_clocks_is_vacuously_balanced(self):
        res = self._result([0.0, 0.0, 0.0])
        assert res.imbalance == 1.0
        assert res.makespan == 0.0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_degenerate_clocks_raise(self, bad):
        from repro.errors import ConfigurationError

        res = self._result([1.0, bad, 2.0])
        with pytest.raises(ConfigurationError, match="degenerate"):
            res.imbalance
        with pytest.raises(ConfigurationError, match="degenerate"):
            res.makespan

    def test_normal_clocks_still_work(self):
        res = self._result([2.0, 4.0])
        assert res.makespan == 4.0
        assert res.imbalance == pytest.approx(4.0 / 3.0)


class TestRecvTimeoutPlumbing:
    def test_explicit_wins(self, monkeypatch):
        from repro.net.comm import RECV_TIMEOUT_ENV, resolve_recv_timeout

        monkeypatch.setenv(RECV_TIMEOUT_ENV, "7")
        assert resolve_recv_timeout(3.5) == 3.5

    def test_env_overrides_default(self, monkeypatch):
        from repro.net.comm import RECV_TIMEOUT_ENV, resolve_recv_timeout

        monkeypatch.setenv(RECV_TIMEOUT_ENV, "42.5")
        assert resolve_recv_timeout() == 42.5

    def test_default(self, monkeypatch):
        from repro.net.comm import (
            DEFAULT_RECV_TIMEOUT,
            RECV_TIMEOUT_ENV,
            resolve_recv_timeout,
        )

        monkeypatch.delenv(RECV_TIMEOUT_ENV, raising=False)
        assert resolve_recv_timeout() == DEFAULT_RECV_TIMEOUT

    @pytest.mark.parametrize("env", ["zero", "-3", "0"])
    def test_bad_env_rejected(self, monkeypatch, env):
        from repro.errors import ConfigurationError
        from repro.net.comm import RECV_TIMEOUT_ENV, resolve_recv_timeout

        monkeypatch.setenv(RECV_TIMEOUT_ENV, env)
        with pytest.raises(ConfigurationError, match="REPRO_RECV_TIMEOUT"):
            resolve_recv_timeout()

    def test_bad_explicit_rejected(self):
        from repro.errors import ConfigurationError
        from repro.net.comm import resolve_recv_timeout

        with pytest.raises(ConfigurationError, match="recv_timeout"):
            resolve_recv_timeout(0)

    def test_communicator_uses_resolved_timeout(self, monkeypatch):
        from repro.net.comm import RECV_TIMEOUT_ENV

        monkeypatch.setenv(RECV_TIMEOUT_ENV, "9.25")
        comm = Communicator(uniform_cluster(2))
        assert comm.recv_timeout == 9.25
        assert Communicator(uniform_cluster(2), recv_timeout=1.5).recv_timeout == 1.5

    def test_timeout_error_names_blocked_receive(self):
        from repro.errors import CommunicationError
        from repro.net.mailbox import Mailbox

        box = Mailbox(rank=4)
        with pytest.raises(CommunicationError) as ei:
            box.receive(2, 17, timeout=0.01)
        msg = str(ei.value)
        assert "rank 4" in msg
        assert "source=2" in msg
        assert "tag=17" in msg
        assert "--recv-timeout" in msg and "REPRO_RECV_TIMEOUT" in msg
