"""The docs cross-links stay valid (the same check CI's docs job runs)."""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_links  # noqa: E402


def test_all_intra_repo_markdown_links_resolve():
    assert check_links.check_repo(REPO_ROOT) == []


def test_required_docs_exist_and_cross_link():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme
    assert "docs/benchmarks.md" in readme
    assert (REPO_ROOT / "docs" / "architecture.md").is_file()
    assert (REPO_ROOT / "docs" / "benchmarks.md").is_file()


def test_checker_catches_broken_link(tmp_path):
    (tmp_path / "a.md").write_text("[missing](gone.md)", encoding="utf-8")
    broken = check_links.check_repo(tmp_path)
    assert broken == ["a.md: gone.md"]
    assert check_links.main([str(tmp_path)]) == 1
