"""Elastic-membership tests: trace algebra, the session, and the
backend-differential contract (ISSUE 4 tentpole).

The hardest guarantee is at the bottom: random membership traces (joins,
leaves, standby starts) driven through ``run_program`` must produce
bit-identical field arrays, virtual clocks, and remap counts under the
``reference`` and ``vectorized`` backends — elastic repartitioning onto a
different-sized active set included.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, LoadBalanceError, RankFailedError
from repro.graph.generators import paper_mesh
from repro.net.cluster import uniform_cluster
from repro.net.loadmodel import (
    CompositeLoad,
    ConstantLoad,
    MembershipEvent,
    MembershipTrace,
    advance_clock,
    work_done_in,
)
from repro.net.spmd import run_spmd
from repro.partition.intervals import partition_list
from repro.runtime.adaptive import (
    AdaptiveSession,
    ElasticState,
    LoadBalanceConfig,
    resolve_membership,
)
from repro.runtime.kernels import run_sequential
from repro.runtime.program import ProgramConfig, run_program


def E(t, kind, rank, replacement=None):
    return MembershipEvent(t, kind, rank, replacement=replacement)


class TestMembershipTrace:
    def test_active_mask_follows_events(self):
        tr = MembershipTrace(
            4,
            [E(1.0, "leave", 0), E(2.0, "join", 3), E(3.0, "join", 0)],
            initially_inactive=[3],
        )
        np.testing.assert_array_equal(
            tr.active_mask(0.0), [True, True, True, False]
        )
        np.testing.assert_array_equal(
            tr.active_mask(1.0), [False, True, True, False]
        )  # events apply at their timestamp
        np.testing.assert_array_equal(
            tr.active_mask(2.5), [False, True, True, True]
        )
        np.testing.assert_array_equal(
            tr.active_mask(99.0), [True, True, True, True]
        )
        assert tr.active_at(1.5) == frozenset({1, 2})

    def test_events_between_window_is_half_open(self):
        tr = MembershipTrace(3, [E(1.0, "leave", 0), E(2.0, "join", 0)])
        assert [e.time for e in tr.events_between(0.0, 1.0)] == [1.0]
        assert tr.events_between(1.0, 1.5) == []
        assert [e.time for e in tr.events_between(1.0, 2.0)] == [2.0]
        with pytest.raises(ValueError):
            tr.events_between(2.0, 1.0)

    def test_next_change_after_shares_inf_sentinel(self):
        tr = MembershipTrace(2, [E(5.0, "leave", 1)])
        assert tr.next_change_after(0.0) == 5.0
        assert tr.next_change_after(5.0) == math.inf

    def test_replace_is_atomic(self):
        tr = MembershipTrace(
            3, [E(1.0, "replace", 0, replacement=2)], initially_inactive=[2]
        )
        assert tr.active_at(1.0) == frozenset({1, 2})

    def test_rejects_invalid_sequences(self):
        with pytest.raises(ValueError, match="not active"):
            MembershipTrace(2, [E(1.0, "leave", 0), E(2.0, "leave", 0)])
        with pytest.raises(ValueError, match="already active"):
            MembershipTrace(2, [E(1.0, "join", 0)])
        with pytest.raises(ValueError, match="empties"):
            MembershipTrace(2, [E(1.0, "leave", 0), E(2.0, "leave", 1)])
        with pytest.raises(ValueError, match="at least one"):
            MembershipTrace(2, [], initially_inactive=[0, 1])
        with pytest.raises(ValueError, match="out of range"):
            MembershipTrace(2, [E(1.0, "leave", 5)])
        with pytest.raises(ValueError):
            MembershipEvent(1.0, "leave", 0, replacement=1)
        with pytest.raises(ValueError):
            MembershipEvent(1.0, "replace", 0)
        with pytest.raises(ValueError, match="itself"):
            MembershipEvent(1.0, "replace", 1, replacement=1)

    def test_parse_round_trip(self):
        tr = MembershipTrace.parse(
            "standby:3, join:3@5.0; leave:0@9.5, replace:1->0@12", 4
        )
        assert tr.initially_inactive == frozenset({3})
        assert [(e.time, e.kind, e.rank) for e in tr.events] == [
            (5.0, "join", 3),
            (9.5, "leave", 0),
            (12.0, "replace", 1),
        ]
        assert tr.events[2].replacement == 0
        with pytest.raises(ValueError, match="malformed"):
            MembershipTrace.parse("bogus", 4)
        with pytest.raises(ValueError, match="malformed"):
            MembershipTrace.parse("leave:0", 4)  # missing @time

    def test_subset_reindexes_and_drops(self):
        tr = MembershipTrace(
            4,
            [E(1.0, "leave", 2), E(2.0, "replace", 0, replacement=3)],
            initially_inactive=[3],
        )
        sub = tr.subset([0, 1, 2])
        assert sub.world_size == 3
        # leave of old-rank 2 keeps its slot; the replace degrades to a
        # leave of old-rank 0 (its replacement was dropped from the world).
        assert [(e.kind, e.rank) for e in sub.events] == [
            ("leave", 2),
            ("leave", 0),
        ]
        # A subset whose surviving events would empty the active set is
        # invalid, loudly.
        with pytest.raises(ValueError, match="empties"):
            tr.subset([0, 2])

    def test_presence_load_composes_with_load_traces(self):
        tr = MembershipTrace(
            2, [E(1.0, "leave", 0), E(3.0, "join", 0)]
        )
        absence = tr.presence_load(0, absent_load=9.0)
        combined = CompositeLoad([absence, ConstantLoad(1.0)])
        assert combined.load_at(0.5) == 1.0
        assert combined.load_at(2.0) == 10.0
        assert combined.load_at(3.0) == 1.0
        # The breakpoints surface through the shared algebra.
        assert combined.next_change_after(0.0) == 1.0
        assert combined.next_change_after(1.0) == 3.0

    def test_resolve_membership_forms(self):
        tr = MembershipTrace(3, [E(1.0, "leave", 0)])
        assert resolve_membership(None, 3) is None
        assert resolve_membership(tr, 3) is tr
        parsed = resolve_membership("leave:0@1.0", 3)
        assert parsed.active_at(1.0) == frozenset({1, 2})
        with pytest.raises(LoadBalanceError):
            resolve_membership(tr, 4)  # world-size mismatch
        with pytest.raises(LoadBalanceError):
            resolve_membership("nope", 3)
        with pytest.raises(LoadBalanceError):
            resolve_membership(42, 3)

    def test_elastic_state_polls_forward_only(self):
        state = ElasticState(MembershipTrace(2, [E(1.0, "leave", 1)]))
        assert state.poll(0.5) == []
        events = state.poll(1.5)
        assert [e.kind for e in events] == ["leave"]
        assert state.num_active == 1
        with pytest.raises(LoadBalanceError, match="backwards"):
            state.poll(1.0)


class TestMembershipAlgebraProperties:
    """MembershipTrace shares the load traces' piecewise-constant algebra."""

    @given(seed=st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_mask_consistent_with_event_replay(self, seed):
        rng = np.random.default_rng(seed)
        world = int(rng.integers(2, 6))
        trace = _random_trace(world, rng, t_scale=10.0)
        # Replaying events_between over any split of the timeline gives the
        # same mask as active_mask at the end point.
        times = sorted(rng.uniform(0, 15, size=4))
        prev = 0.0
        active = set(np.flatnonzero(trace.active_mask(0.0)))
        for t in times:
            for ev in trace.events_between(prev, t):
                if ev.kind in ("leave", "replace"):
                    active.discard(ev.rank)
                if ev.kind == "join":
                    active.add(ev.rank)
                if ev.kind == "replace":
                    active.add(ev.replacement)
            assert active == set(np.flatnonzero(trace.active_mask(t)))
            prev = t

    @given(seed=st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_next_change_walk_visits_every_event(self, seed):
        rng = np.random.default_rng(seed)
        trace = _random_trace(int(rng.integers(2, 6)), rng, t_scale=10.0)
        t, seen = 0.0, 0
        while True:
            nxt = trace.next_change_after(t)
            if nxt == math.inf:
                break
            seen += len(trace.events_between(t, nxt))
            t = nxt
        assert seen == len(trace.events)
        # Presence loads derived from the trace preserve integrability.
        for rank in range(trace.world_size):
            load = trace.presence_load(rank, absent_load=3.0)
            w = work_done_in(0.0, t + 1.0, 1.0, load)
            t_back = advance_clock(0.0, w, 1.0, load)
            assert math.isclose(t_back, t + 1.0, rel_tol=1e-9, abs_tol=1e-9)


def _random_trace(
    world: int, rng: np.random.Generator, *, t_scale: float
) -> MembershipTrace:
    """A random *valid* membership trace built by forward simulation."""
    active = set(range(world))
    standby: set[int] = set()
    for r in range(world):
        if len(active) > 1 and rng.random() < 0.3:
            active.discard(r)
            standby.add(r)
    initially_inactive = sorted(standby)
    events = []
    t = 0.0
    for _ in range(int(rng.integers(1, 6))):
        t += float(rng.uniform(0.05, 0.35)) * t_scale
        want_leave = rng.random() < 0.5
        if want_leave and len(active) > 1:
            r = int(rng.choice(sorted(active)))
            events.append(E(t, "leave", r))
            active.discard(r)
            standby.add(r)
        elif standby:
            r = int(rng.choice(sorted(standby)))
            events.append(E(t, "join", r))
            standby.discard(r)
            active.add(r)
    return MembershipTrace(world, events, initially_inactive=initially_inactive)


class TestElasticRuns:
    @pytest.fixture(scope="class")
    def workload(self):
        graph = paper_mesh(400, seed=11)
        y0 = np.random.default_rng(11).uniform(0, 100, graph.num_vertices)
        return graph, y0

    def _run(self, workload, trace, backend, *, lb="centralized", iters=12, p=4):
        graph, y0 = workload
        config = ProgramConfig(
            iterations=iters,
            backend=backend,
            membership=trace,
            load_balance=lb,
            initial_capabilities="equal",
        )
        return run_program(graph, uniform_cluster(p), config, y0=y0)

    def test_leave_drains_to_survivors(self, workload):
        trace = MembershipTrace(4, [E(0.02, "leave", 1)])
        report = self._run(workload, trace, None)
        sizes = report.partition_final.sizes()
        assert sizes[1] == 0
        assert sizes.sum() == workload[0].num_vertices
        assert report.num_remaps >= 1
        assert report.membership_events == 1
        oracle = run_sequential(*workload, 12)
        np.testing.assert_allclose(report.values, oracle, atol=1e-9)

    def test_shrink_to_one_rank(self, workload):
        trace = MembershipTrace(
            4, [E(0.01, "leave", 0), E(0.02, "leave", 1), E(0.03, "leave", 3)]
        )
        results = {}
        for backend in ("vectorized", "reference"):
            report = self._run(workload, trace, backend)
            sizes = report.partition_final.sizes()
            assert sizes.tolist().count(0) == 3
            assert sizes[2] == workload[0].num_vertices
            results[backend] = report
        np.testing.assert_array_equal(
            results["vectorized"].values, results["reference"].values
        )
        assert results["vectorized"].clocks == results["reference"].clocks
        oracle = run_sequential(*workload, 12)
        np.testing.assert_allclose(
            results["vectorized"].values, oracle, atol=1e-9
        )

    def test_join_before_first_epoch(self, workload):
        """A join landing at the very first iteration boundary, before any
        monitor window exists, is adopted without desync on either backend."""
        trace = MembershipTrace(
            4, [E(1e-9, "join", 3)], initially_inactive=[3]
        )
        results = {}
        for backend in ("vectorized", "reference"):
            report = self._run(workload, trace, backend)
            assert report.partition_final.sizes()[3] > 0
            results[backend] = report
        np.testing.assert_array_equal(
            results["vectorized"].values, results["reference"].values
        )
        assert results["vectorized"].makespan == results["reference"].makespan

    def test_static_baseline_drains_but_ignores_joins(self, workload):
        drain = MembershipTrace(4, [E(0.02, "leave", 0)])
        report = self._run(workload, drain, None, lb="off")
        assert report.num_remaps == 1  # the mandatory drain
        assert report.partition_final.sizes()[0] == 0

        join = MembershipTrace(4, [E(0.02, "join", 3)], initially_inactive=[3])
        report = self._run(workload, join, None, lb="off")
        assert report.num_remaps == 0
        assert report.partition_final.sizes()[3] == 0  # never adopted

        # A later forced drain must not smuggle data onto the ignored
        # joiner: the baseline's drain targets existing holders only.
        join_then_leave = MembershipTrace(
            4,
            [E(0.02, "join", 3), E(0.04, "leave", 0)],
            initially_inactive=[3],
        )
        report = self._run(workload, join_then_leave, None, lb="off")
        sizes = report.partition_final.sizes()
        assert sizes[0] == 0 and sizes[3] == 0
        assert sizes[1] > 0 and sizes[2] > 0
        oracle = run_sequential(*workload, 12)
        np.testing.assert_allclose(report.values, oracle, atol=1e-9)

        # ...unless the departing ranks held everything: then the data
        # must land on whatever is active, joiner included.
        only_choice = MembershipTrace(
            2, [E(0.005, "join", 1), E(0.012, "leave", 0)],
            initially_inactive=[1],
        )
        report = self._run(workload, only_choice, None, lb="off", p=2)
        sizes = report.partition_final.sizes()
        assert sizes[0] == 0 and sizes[1] == workload[0].num_vertices

    def test_replace_hands_over_atomically(self, workload):
        trace = MembershipTrace(
            4, [E(0.02, "replace", 0, replacement=3)], initially_inactive=[3]
        )
        report = self._run(workload, trace, None, lb="off")
        sizes = report.partition_final.sizes()
        assert sizes[0] == 0 and sizes[3] > 0
        oracle = run_sequential(*workload, 12)
        np.testing.assert_allclose(report.values, oracle, atol=1e-9)

    def test_membership_events_property_raises_on_desync(self, workload):
        trace = MembershipTrace(4, [E(0.02, "leave", 1)])
        report = self._run(workload, trace, None)
        assert report.membership_events == 1
        report.rank_stats[2].membership_events = 0  # simulate a desync
        with pytest.raises(LoadBalanceError, match="desynchronized"):
            report.membership_events

    def test_decide_rejects_inf_but_imputes_nan(self, workload):
        """Only the documented nan sentinel is imputed; an infinite load
        report (e.g. a broken predictor) still fails loudly."""
        from repro.runtime.adaptive import decide

        part = partition_list(100, np.ones(2))
        cfg = LoadBalanceConfig()

        def fn(ctx):
            ok = decide(ctx, part, [1e-4, float("nan")], 10, cfg)
            assert np.isfinite(ok.predicted_balanced)
            with pytest.raises(LoadBalanceError, match="invalid load"):
                decide(ctx, part, [1e-4, float("inf")], 10, cfg)
            return True

        assert all(run_spmd(uniform_cluster(2), fn).values)

    def test_membership_requires_barriers(self, workload):
        trace = MembershipTrace(4, [E(0.02, "leave", 0)])
        with pytest.raises(ConfigurationError, match="barrier"):
            self._run_config_error(workload, trace)

    def _run_config_error(self, workload, trace):
        graph, y0 = workload
        config = ProgramConfig(
            iterations=4,
            membership=trace,
            barrier_each_iteration=False,
        )
        run_program(graph, uniform_cluster(4), config, y0=y0)

    def test_session_rejects_data_on_standby_ranks(self, workload):
        graph, _ = workload
        n = graph.num_vertices
        trace = MembershipTrace(3, [], initially_inactive=[2])

        def rank_main(ctx):
            AdaptiveSession(
                ctx,
                graph,
                partition_list(n, np.ones(ctx.size)),  # rank 2 gets data
                total_iterations=4,
                membership=trace,
            )

        with pytest.raises(RankFailedError, match="standby"):
            run_spmd(uniform_cluster(3), rank_main)

    def test_dsl_string_accepted_by_program_config(self, workload):
        report = self._run(workload, "leave:1@0.02", None)
        assert report.partition_final.sizes()[1] == 0

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_differential_random_membership(self, seed):
        """Random traces x both backends: bit-identical fields, clocks,
        and remap counts, and values equal to the sequential oracle."""
        rng = np.random.default_rng(seed)
        graph = paper_mesh(300, seed=17)
        y0 = np.random.default_rng(17).uniform(0, 100, graph.num_vertices)
        p = int(rng.integers(2, 5))
        iters = int(rng.integers(6, 12))
        # Virtual event times on the scale of this workload's short runs.
        trace = _random_trace(p, rng, t_scale=0.05)
        style = rng.choice(["centralized", "distributed", "off"])
        reports = {}
        for backend in ("vectorized", "reference"):
            config = ProgramConfig(
                iterations=iters,
                backend=backend,
                membership=trace,
                load_balance=str(style),
                initial_capabilities="equal",
            )
            reports[backend] = run_program(
                graph, uniform_cluster(p), config, y0=y0
            )
        a, b = reports["vectorized"], reports["reference"]
        np.testing.assert_array_equal(a.values, b.values)
        assert a.clocks == b.clocks
        assert a.makespan == b.makespan
        assert a.num_remaps == b.num_remaps
        np.testing.assert_array_equal(
            a.partition_final.bounds, b.partition_final.bounds
        )
        oracle = run_sequential(graph, y0, iters)
        np.testing.assert_allclose(a.values, oracle, atol=1e-9)


class TestLegacyStrategyProtocol:
    def test_pr3_signature_strategy_still_works_without_membership(self):
        """A caller-supplied strategy written against the PR-3 check
        signature (no active/force keywords) keeps working in ordinary
        non-elastic runs."""
        from dataclasses import dataclass

        from repro.runtime.adaptive import CentralizedStrategy

        calls = []

        @dataclass(frozen=True)
        class OldStyle:
            name: str = "old-style"

            def check(self, ctx, partition, time_per_item,
                      remaining_iterations, config):
                calls.append(ctx.rank)
                return CentralizedStrategy().check(
                    ctx, partition, time_per_item, remaining_iterations,
                    config,
                )

        graph = paper_mesh(300, seed=4)
        n = graph.num_vertices

        def rank_main(ctx):
            session = AdaptiveSession(
                ctx,
                graph,
                partition_list(n, np.ones(ctx.size)),
                total_iterations=12,
                lb=LoadBalanceConfig(check_interval=3),
                strategy=OldStyle(),
            )
            for it in range(12):
                ctx.compute(1e-5 * session.partition.sizes()[ctx.rank])
                session.record(1e-5, int(session.partition.sizes()[ctx.rank]))
                ctx.barrier()
                session.maybe_rebalance(it, ())
            return session.stats.num_checks

        res = run_spmd(uniform_cluster(2), rank_main)
        assert all(c > 0 for c in res.values)
        assert calls

    def test_pr3_signature_strategy_rejected_under_membership(self):
        """The same legacy strategy plus a membership trace fails fast at
        construction, not with a mid-run TypeError at the first check."""

        class OldStyle:
            name = "old-style"

            def check(self, ctx, partition, time_per_item,
                      remaining_iterations, config):  # pragma: no cover
                raise AssertionError("never reached")

        graph = paper_mesh(300, seed=4)
        n = graph.num_vertices
        trace = MembershipTrace(2, [E(0.01, "leave", 1)])

        def rank_main(ctx):
            AdaptiveSession(
                ctx,
                graph,
                partition_list(n, np.ones(ctx.size)),
                total_iterations=8,
                strategy=OldStyle(),
                membership=trace,
            )

        with pytest.raises(RankFailedError, match="'active'"):
            run_spmd(uniform_cluster(2), rank_main)


class TestElasticScenarios:
    def test_elastic_cluster_builds_all_scenarios(self):
        from repro.apps.workloads import ELASTIC_SCENARIOS, elastic_cluster

        horizon = 100.0
        for scenario in ELASTIC_SCENARIOS:
            cluster = elastic_cluster(4, scenario, horizon)
            assert cluster.membership is not None
            assert cluster.membership.world_size == 4

        leave = elastic_cluster(4, "leave-at-peak", horizon)
        assert leave.processors[0].load.load_at(0.5 * horizon) > 0
        assert leave.membership.active_at(1.06 * horizon) == frozenset({1, 2, 3})

        join = elastic_cluster(4, "join-midrun", horizon)
        assert join.membership.active_at(0.0) == frozenset({0, 1, 2})
        assert join.membership.active_at(0.5 * horizon) == frozenset({0, 1, 2, 3})

        churn = elastic_cluster(4, "churn", horizon)
        assert churn.membership.active_at(0.35 * horizon) == frozenset({0, 2, 3})
        assert churn.membership.active_at(0.65 * horizon) == frozenset({0, 1, 2, 3})
        assert churn.membership.active_at(0.95 * horizon) == frozenset({0, 1, 3})

        with pytest.raises(ValueError):
            elastic_cluster(4, "tsunami", horizon)
        with pytest.raises(ValueError):
            elastic_cluster(4, "churn", 0.0)
        with pytest.raises(ValueError):
            elastic_cluster(1, "churn", horizon)

    def test_cluster_capability_ratios_mask_membership(self):
        from repro.apps.workloads import elastic_cluster

        cluster = elastic_cluster(4, "join-midrun", 100.0)
        early = cluster.capability_ratios(0.0)
        assert early[3] == 0.0
        assert math.isclose(early.sum(), 1.0)
        late = cluster.capability_ratios(60.0)
        assert late[3] > 0.0
        # Explicit masks override the trace.
        forced = cluster.capability_ratios(0.0, active=np.ones(4, bool))
        assert forced[3] > 0.0

    def test_subset_carries_membership(self):
        from repro.apps.workloads import elastic_cluster

        cluster = elastic_cluster(4, "churn", 100.0)
        sub = cluster.subset([0, 1])
        assert sub.membership.world_size == 2
        assert sub.membership.active_at(35.0) == frozenset({0})
        # A sub-world that is not runnable (its only rank starts standby)
        # surfaces as the same ConfigurationError as any invalid subset.
        join = elastic_cluster(3, "join-midrun", 10.0)
        with pytest.raises(ConfigurationError, match="does not restrict"):
            join.subset([2])

    def test_scale_elastic_measurement_smoke(self):
        from repro.experiments.catalog import scale_elastic_measurements

        m = scale_elastic_measurements(
            "10k", "leave-at-peak", "vectorized", True, 4, 30, 5
        )
        baseline = scale_elastic_measurements(
            "10k", "leave-at-peak", "vectorized", False, 4, 30, 5
        )
        assert m["membership_events"] == 1
        assert m["num_remaps"] >= 2  # at least one rebalance + the drain
        assert m["final_active"] == 3
        assert baseline["num_remaps"] == 1  # the mandatory drain only
        assert m["makespan"] < baseline["makespan"]
