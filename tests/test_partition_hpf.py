"""Tests for HPF-style distributions and redistribution."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError, RankFailedError
from repro.net.cluster import uniform_cluster
from repro.net.spmd import run_spmd
from repro.partition.hpf import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    hpf_transfer_summary,
    redistribute_hpf,
)

ALL_KINDS = [
    lambda n, p: BlockDistribution(n, p),
    lambda n, p: CyclicDistribution(n, p),
    lambda n, p: BlockCyclicDistribution(n, p, 1),
    lambda n, p: BlockCyclicDistribution(n, p, 3),
    lambda n, p: BlockCyclicDistribution(n, p, 7),
]


class TestDistributions:
    def test_block_layout(self):
        d = BlockDistribution(10, 3)  # blocks of 4
        np.testing.assert_array_equal(
            d.owner_of(np.arange(10)), [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]
        )
        np.testing.assert_array_equal(d.global_indices(1), [4, 5, 6, 7])
        np.testing.assert_array_equal(
            d.local_index(np.array([4, 7, 9])), [0, 3, 1]
        )

    def test_cyclic_layout(self):
        d = CyclicDistribution(10, 3)
        np.testing.assert_array_equal(
            d.owner_of(np.arange(6)), [0, 1, 2, 0, 1, 2]
        )
        np.testing.assert_array_equal(d.global_indices(1), [1, 4, 7])
        np.testing.assert_array_equal(d.local_index(np.array([1, 4, 7])), [0, 1, 2])

    def test_block_cyclic_layout(self):
        d = BlockCyclicDistribution(12, 2, 3)
        np.testing.assert_array_equal(
            d.owner_of(np.arange(12)),
            [0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1],
        )
        np.testing.assert_array_equal(d.global_indices(0), [0, 1, 2, 6, 7, 8])
        np.testing.assert_array_equal(
            d.local_index(np.array([0, 2, 6, 8])), [0, 2, 3, 5]
        )

    def test_cyclic_equals_block_cyclic_1(self):
        c = CyclicDistribution(17, 4)
        bc = BlockCyclicDistribution(17, 4, 1)
        gi = np.arange(17)
        np.testing.assert_array_equal(c.owner_of(gi), bc.owner_of(gi))
        np.testing.assert_array_equal(c.local_index(gi), bc.local_index(gi))

    def test_block_equals_big_block_cyclic(self):
        b = BlockDistribution(12, 3)
        bc = BlockCyclicDistribution(12, 3, 4)
        gi = np.arange(12)
        np.testing.assert_array_equal(b.owner_of(gi), bc.owner_of(gi))

    @pytest.mark.parametrize("make", ALL_KINDS)
    def test_partition_properties(self, make):
        d = make(29, 4)
        gi = np.arange(29)
        owners = d.owner_of(gi)
        assert owners.min() >= 0 and owners.max() < 4
        # global_indices inverts owner_of.
        seen = np.concatenate([d.global_indices(r) for r in range(4)])
        assert np.array_equal(np.sort(seen), gi)
        # local indices are a bijection per rank.
        for r in range(4):
            mine = d.global_indices(r)
            local = d.local_index(mine)
            assert np.array_equal(np.sort(local), np.arange(mine.size))

    def test_validation(self):
        with pytest.raises(PartitionError):
            BlockDistribution(-1, 2)
        with pytest.raises(PartitionError):
            BlockDistribution(5, 0)
        with pytest.raises(PartitionError):
            BlockCyclicDistribution(5, 2, 0)
        with pytest.raises(PartitionError):
            BlockDistribution(5, 2).owner_of(np.array([5]))
        with pytest.raises(PartitionError):
            BlockDistribution(5, 2).global_indices(2)


class TestTransferSummary:
    def test_identity_moves_nothing(self):
        b = BlockDistribution(40, 4)
        summary = hpf_transfer_summary(b, b)
        assert summary["moved_elements"] == 0
        assert summary["messages"] == 0

    def test_block_to_cyclic_moves_most(self):
        n, p = 100, 4
        summary = hpf_transfer_summary(
            BlockDistribution(n, p), CyclicDistribution(n, p)
        )
        # Each block keeps only its ~n/p^2 stride-aligned elements:
        # here exactly 7 per block stay, 72 of 100 move.
        assert summary["moved_elements"] == 72
        assert summary["stationary_elements"] == 28
        assert summary["messages"] == p * (p - 1)

    def test_incompatible_rejected(self):
        with pytest.raises(PartitionError):
            hpf_transfer_summary(BlockDistribution(10, 2), BlockDistribution(12, 2))
        with pytest.raises(PartitionError):
            hpf_transfer_summary(BlockDistribution(10, 2), BlockDistribution(10, 3))


class TestRedistributeHPF:
    @pytest.mark.parametrize("src_make", ALL_KINDS)
    @pytest.mark.parametrize("dst_make", ALL_KINDS)
    def test_all_pairs_roundtrip(self, src_make, dst_make):
        n, p = 53, 3
        src, dst = src_make(n, p), dst_make(n, p)
        data = np.arange(n, dtype=np.float64) * 1.5

        def fn(ctx):
            local = data[src.global_indices(ctx.rank)].copy()
            out = redistribute_hpf(ctx, src, dst, local)
            np.testing.assert_array_equal(out, data[dst.global_indices(ctx.rank)])
            return True

        assert all(run_spmd(uniform_cluster(p), fn).values)

    def test_vector_payload(self):
        n, p = 30, 3
        src = BlockDistribution(n, p)
        dst = CyclicDistribution(n, p)
        data = np.random.default_rng(0).uniform(size=(n, 2))

        def fn(ctx):
            local = data[src.global_indices(ctx.rank)].copy()
            out = redistribute_hpf(ctx, src, dst, local)
            np.testing.assert_array_equal(out, data[dst.global_indices(ctx.rank)])
            return True

        assert all(run_spmd(uniform_cluster(p), fn).values)

    def test_wrong_local_size_rejected(self):
        n, p = 20, 2
        src, dst = BlockDistribution(n, p), CyclicDistribution(n, p)

        def fn(ctx):
            redistribute_hpf(ctx, src, dst, np.zeros(3))

        with pytest.raises(RankFailedError):
            run_spmd(uniform_cluster(p), fn)

    @given(
        n=st.integers(1, 120),
        p=st.integers(1, 4),
        b=st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_block_to_blockcyclic_property(self, n, p, b):
        src = BlockDistribution(n, p)
        dst = BlockCyclicDistribution(n, p, b)
        data = np.random.default_rng(n + p + b).uniform(size=n)

        def fn(ctx):
            local = data[src.global_indices(ctx.rank)].copy()
            out = redistribute_hpf(ctx, src, dst, local)
            np.testing.assert_array_equal(out, data[dst.global_indices(ctx.rank)])
            return True

        assert all(run_spmd(uniform_cluster(p), fn).values)
