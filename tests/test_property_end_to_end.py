"""End-to-end property tests: the full runtime against the oracle.

Hypothesis drives the whole stack — random meshes, random heterogeneous
clusters, random strategies and orderings, optional load traces — and the
single invariant that matters holds every time: the parallel run computes
exactly what the sequential Fig. 8 loop computes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.generators import perturbed_grid_mesh
from repro.net.cluster import heterogeneous_cluster
from repro.net.loadmodel import ConstantLoad, StepLoad
from repro.partition.ordering import IdentityOrdering, RandomOrdering
from repro.partition.rcb import RCBOrdering
from repro.partition.sfc import MortonOrdering
from repro.runtime.adaptive import LoadBalanceConfig
from repro.runtime.kernels import run_sequential
from repro.runtime.program import ProgramConfig, run_program

ORDERINGS = [
    IdentityOrdering(),
    RCBOrdering(),
    MortonOrdering(),
    RandomOrdering(seed=3),
]


@st.composite
def scenario(draw):
    side = draw(st.integers(5, 10))
    mesh_seed = draw(st.integers(0, 50))
    p = draw(st.integers(1, 4))
    speeds = [draw(st.floats(0.3, 1.5)) for _ in range(p)]
    iterations = draw(st.integers(1, 12))
    strategy = draw(st.sampled_from(["sort1", "sort2", "simple"]))
    ordering = draw(st.sampled_from(ORDERINGS))
    lb = draw(st.booleans())
    loaded_rank = draw(st.integers(0, p - 1)) if draw(st.booleans()) else None
    return (side, mesh_seed, p, speeds, iterations, strategy, ordering, lb,
            loaded_rank)


class TestEndToEnd:
    @given(scenario())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_parallel_equals_sequential(self, params):
        (side, mesh_seed, p, speeds, iterations, strategy, ordering, lb,
         loaded_rank) = params
        graph = perturbed_grid_mesh(side, side, seed=mesh_seed).graph
        cluster = heterogeneous_cluster(speeds)
        if loaded_rank is not None:
            cluster = cluster.with_load(loaded_rank, ConstantLoad(1.5))
        y0 = np.random.default_rng(mesh_seed).uniform(0, 100, graph.num_vertices)
        config = ProgramConfig(
            iterations=iterations,
            strategy=strategy,
            ordering=ordering,
            load_balance=LoadBalanceConfig(check_interval=4) if lb else None,
        )
        report = run_program(graph, cluster, config, y0=y0)
        oracle = run_sequential(graph, y0, iterations)
        np.testing.assert_allclose(report.values, oracle, atol=1e-9)
        # Virtual time sanity: positive, bounded by a sequential run on the
        # slowest machine plus generous overhead.
        assert report.makespan > 0
        slowest = min(speeds)
        upper = (report.total_work_seconds / slowest) * (2.0 if loaded_rank is None else 4.0) + 1.0
        assert report.makespan < upper

    @given(
        side=st.integers(5, 9),
        seed=st.integers(0, 30),
        p=st.integers(2, 4),
        step_time=st.floats(0.001, 0.2),
        load=st.floats(0.5, 4.0),
    )
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_lb_never_corrupts_under_step_loads(self, side, seed, p,
                                                step_time, load):
        graph = perturbed_grid_mesh(side, side, seed=seed).graph
        cluster = heterogeneous_cluster([1.0] * p).with_load(
            seed % p, StepLoad([(0.0, 0.0), (step_time, load)])
        )
        y0 = np.linspace(0, 50, graph.num_vertices)
        config = ProgramConfig(
            iterations=20,
            initial_capabilities="equal",
            load_balance=LoadBalanceConfig(check_interval=5),
        )
        report = run_program(graph, cluster, config, y0=y0)
        oracle = run_sequential(graph, y0, 20)
        np.testing.assert_allclose(report.values, oracle, atol=1e-9)
