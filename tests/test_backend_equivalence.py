"""Differential tests: the ``reference`` and ``vectorized`` backends must
produce **bit-identical** translation tables, schedules, kernel plans, and
gather/scatter results — and identical virtual time — on randomized meshes,
partitions, and capability vectors.

These tests are the contract that lets the vectorized hot paths evolve
freely: any divergence from the scalar paper-faithful implementation is a
bug in one of the two.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import perturbed_grid_mesh, random_geometric_graph
from repro.net.cluster import heterogeneous_cluster, uniform_cluster
from repro.net.spmd import run_spmd
from repro.partition.intervals import partition_list
from repro.runtime.backend import BACKENDS, resolve_backend, use_backend
from repro.runtime.executor import gather, gather_fields, scatter
from repro.runtime.kernels import build_kernel_plan
from repro.runtime.program import ProgramConfig, run_program
from repro.runtime.schedule import CommSchedule
from repro.runtime.schedule_builders import (
    build_schedule_no_dedup,
    build_schedule_simple,
    build_schedule_sort1,
    build_schedule_sort2,
)
from repro.runtime.translation import (
    DistributedTranslationTable,
    IntervalTranslationTable,
    ReplicatedTranslationTable,
)

MAX_P = 4


def random_workload(seed: int):
    """A random (graph, partition, p) triple driven by one seed.

    Alternates mesh families; capability vectors are random (so block sizes
    are uneven), and the arrangement is a random permutation (so rank order
    differs from block order).
    """
    rng = np.random.default_rng(seed)
    p = int(rng.integers(2, MAX_P + 1))
    if seed % 2:
        side = int(rng.integers(5, 11))
        graph = perturbed_grid_mesh(side, side, seed=seed).graph
    else:
        n = int(rng.integers(40, 140))
        graph = random_geometric_graph(n, seed=seed)
    caps = rng.uniform(0.2, 1.0, p)
    arrangement = rng.permutation(p)
    part = partition_list(graph.num_vertices, caps, arrangement)
    return graph, part, p, rng


def assert_schedules_identical(a: CommSchedule, b: CommSchedule) -> None:
    assert a.rank == b.rank
    assert sorted(a.send_lists) == sorted(b.send_lists)
    for dest in a.send_lists:
        np.testing.assert_array_equal(a.send_lists[dest], b.send_lists[dest])
    assert sorted(a.recv_lists) == sorted(b.recv_lists)
    for src in a.recv_lists:
        np.testing.assert_array_equal(a.recv_lists[src], b.recv_lists[src])
    np.testing.assert_array_equal(a.ghost_globals, b.ghost_globals)


class TestTranslationTables:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_interval_table_dereference(self, seed):
        graph, part, p, rng = random_workload(seed)
        table = IntervalTranslationTable(part)
        gi = rng.integers(0, part.num_elements, size=50)
        ro, rl = table.dereference(gi, backend="reference")
        vo, vl = table.dereference(gi, backend="vectorized")
        np.testing.assert_array_equal(ro, vo)
        np.testing.assert_array_equal(rl, vl)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_replicated_table_dereference(self, seed):
        _, part, _, rng = random_workload(seed)
        table = ReplicatedTranslationTable.from_partition(part)
        gi = rng.integers(0, part.num_elements, size=50)
        ro, rl = table.dereference(gi, backend="reference")
        vo, vl = table.dereference(gi, backend="vectorized")
        np.testing.assert_array_equal(ro, vo)
        np.testing.assert_array_equal(rl, vl)

    @pytest.mark.parametrize("seed", range(6))
    def test_distributed_table_collective(self, seed):
        _, part, p, rng = random_workload(seed)
        n = part.num_elements
        queries = [rng.integers(0, n, size=int(rng.integers(0, 30)))
                   for _ in range(p)]

        def run(backend):
            def fn(ctx):
                table = DistributedTranslationTable(part, ctx.rank)
                return table.dereference_collective(
                    ctx, queries[ctx.rank], backend=backend
                )

            return run_spmd(uniform_cluster(p), fn)

        res_ref, res_vec = run("reference"), run("vectorized")
        for (ro, rl), (vo, vl) in zip(res_ref.values, res_vec.values):
            np.testing.assert_array_equal(ro, vo)
            np.testing.assert_array_equal(rl, vl)
        # Virtual-time parity: backends issue identical charges; the wide
        # tolerance absorbs network-contention ordering, which varies with
        # host thread scheduling even within one backend on these
        # microsecond-scale runs.
        assert res_ref.makespan == pytest.approx(res_vec.makespan, rel=0.25)


class TestSchedules:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_sorted_builders_identical(self, seed):
        graph, part, p, _ = random_workload(seed)
        for rank in range(p):
            for builder in (build_schedule_sort1, build_schedule_sort2,
                            build_schedule_no_dedup):
                a = builder(graph, part, rank, backend="reference")
                b = builder(graph, part, rank, backend="vectorized")
                assert_schedules_identical(a, b)

    @pytest.mark.parametrize("seed", range(6))
    def test_simple_builder_identical(self, seed):
        graph, part, p, _ = random_workload(seed)

        def run(backend):
            def fn(ctx):
                return build_schedule_simple(
                    graph, part, ctx=ctx, backend=backend
                )

            return run_spmd(uniform_cluster(p), fn)

        res_ref, res_vec = run("reference"), run("vectorized")
        for a, b in zip(res_ref.values, res_vec.values):
            assert_schedules_identical(a, b)
        assert res_ref.makespan == pytest.approx(res_vec.makespan, rel=0.25)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_kernel_plans_identical(self, seed):
        graph, part, p, _ = random_workload(seed)
        for rank in range(p):
            sched = build_schedule_sort2(graph, part, rank)
            a = build_kernel_plan(graph, part, sched, backend="reference")
            b = build_kernel_plan(graph, part, sched, backend="vectorized")
            np.testing.assert_array_equal(a.slots, b.slots)
            np.testing.assert_array_equal(a.starts, b.starts)
            np.testing.assert_array_equal(a.counts, b.counts)


class TestExecutor:
    @pytest.mark.parametrize("seed", range(8))
    def test_gather_scatter_bit_identical(self, seed):
        graph, part, p, rng = random_workload(seed)
        n = graph.num_vertices
        y = rng.uniform(-1e6, 1e6, n)

        def run(backend):
            def fn(ctx):
                sched = build_schedule_sort2(
                    graph, part, ctx.rank, backend=backend
                )
                lo, hi = part.interval(ctx.rank)
                local = y[lo:hi].copy()
                ghost = gather(ctx, sched, local, backend=backend)
                scatter(ctx, sched, ghost, local, op="add", backend=backend)
                return ghost, local

            return run_spmd(uniform_cluster(p), fn)

        res_ref, res_vec = run("reference"), run("vectorized")
        for (gr, lr), (gv, lv) in zip(res_ref.values, res_vec.values):
            # Bitwise equality, not allclose: both backends must apply
            # contributions in exactly the same order.
            np.testing.assert_array_equal(gr, gv)
            np.testing.assert_array_equal(lr, lv)
        # recv_expected charges receives in virtual-arrival order, so on
        # the deterministic point-to-point network the clocks must agree
        # exactly — host thread scheduling cannot leak into virtual time.
        assert res_ref.clocks == res_vec.clocks

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_gather_fields_matches_repeated_gather(self, backend):
        graph, part, p, rng = random_workload(11)
        n = graph.num_vertices
        fields = [rng.uniform(size=n), rng.uniform(size=(n, 2))]

        def fn(ctx):
            sched = build_schedule_sort2(graph, part, ctx.rank)
            lo, hi = part.interval(ctx.rank)
            packed = gather_fields(
                ctx, sched, [f[lo:hi] for f in fields], backend=backend
            )
            singles = [
                gather(ctx, sched, f[lo:hi], backend=backend) for f in fields
            ]
            for a, b in zip(packed, singles):
                np.testing.assert_array_equal(a, b)
            # Coalescing: one message per peer instead of one per field.
            return sched.num_send_messages

        assert sum(run_spmd(uniform_cluster(p), fn).values) > 0


class TestEndToEnd:
    @pytest.mark.parametrize("strategy", ["sort2", "simple"])
    def test_program_identical_across_backends(self, strategy):
        graph = perturbed_grid_mesh(9, 9, seed=3).graph
        y0 = np.random.default_rng(3).uniform(0, 100, graph.num_vertices)
        cluster = heterogeneous_cluster([1.0, 0.7, 0.5])
        reports = {}
        for backend in BACKENDS:
            reports[backend] = run_program(
                graph,
                cluster,
                ProgramConfig(iterations=6, strategy=strategy, backend=backend),
                y0=y0,
            )
        np.testing.assert_array_equal(
            reports["reference"].values, reports["vectorized"].values
        )
        # Exact, not approximate: every receive is charged in virtual-
        # arrival order, so whole-program virtual time is bit-identical
        # across backends on deterministic networks.
        assert reports["reference"].makespan == reports["vectorized"].makespan

    def test_use_backend_context(self):
        assert resolve_backend(None) in BACKENDS
        with use_backend("reference"):
            assert resolve_backend(None) == "reference"
            with use_backend("vectorized"):
                assert resolve_backend(None) == "vectorized"
            assert resolve_backend(None) == "reference"

    def test_unknown_backend_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            resolve_backend("simd")
        with pytest.raises(ConfigurationError):
            ProgramConfig(backend="simd")
