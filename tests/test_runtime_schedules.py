"""Tests for communication schedules and the three builders (Table 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.graph.generators import grid_graph, perturbed_grid_mesh
from repro.net.cluster import uniform_cluster
from repro.net.spmd import run_spmd
from repro.partition.intervals import partition_list
from repro.partition.rcb import RCBOrdering
from repro.runtime.schedule import CommSchedule
from repro.runtime.schedule_builders import (
    InspectorCostModel,
    build_schedule_simple,
    build_schedule_sort1,
    build_schedule_sort2,
    local_references,
)


@pytest.fixture(scope="module")
def ordered_mesh():
    g = perturbed_grid_mesh(12, 12, seed=3).graph
    return g.permute(RCBOrdering()(g))


def build_all_sorted(graph, part):
    return [
        build_schedule_sort1(graph, part, r)
        for r in range(part.num_processors)
    ]


class TestCommScheduleStructure:
    def test_ghost_accessors(self, ordered_mesh):
        part = partition_list(ordered_mesh.num_vertices, np.ones(3))
        sched = build_schedule_sort1(ordered_mesh, part, 0)
        assert sched.ghost_size == sched.ghost_globals.size
        assert sched.num_send_messages >= 1
        assert sched.num_recv_messages >= 1
        assert sched.send_volume == sum(
            a.size for a in sched.send_lists.values()
        )

    def test_send_recv_globals(self, ordered_mesh):
        part = partition_list(ordered_mesh.num_vertices, np.ones(2))
        s0 = build_schedule_sort1(ordered_mesh, part, 0)
        s1 = build_schedule_sort1(ordered_mesh, part, 1)
        np.testing.assert_array_equal(s0.send_globals(1), s1.recv_globals(0))
        np.testing.assert_array_equal(s1.send_globals(0), s0.recv_globals(1))

    def test_validate_pair_passes(self, ordered_mesh):
        part = partition_list(ordered_mesh.num_vertices, np.ones(3))
        scheds = build_all_sorted(ordered_mesh, part)
        for a in scheds:
            for b in scheds:
                if a.rank != b.rank:
                    a.validate_pair(b)

    def test_validate_pair_detects_mismatch(self):
        part = partition_list(4, np.ones(2))
        good = CommSchedule(
            rank=0,
            partition=part,
            send_lists={1: np.array([1])},
            recv_lists={1: np.array([0])},
            ghost_globals=np.array([2]),
        )
        bad = CommSchedule(
            rank=1,
            partition=part,
            send_lists={0: np.array([0])},
            recv_lists={0: np.array([0])},
            ghost_globals=np.array([0]),  # expects global 0, not 1
        )
        with pytest.raises(ScheduleError):
            good.validate_pair(bad)

    def test_rejects_self_send(self):
        part = partition_list(4, np.ones(2))
        with pytest.raises(ScheduleError):
            CommSchedule(rank=0, partition=part, send_lists={0: np.array([0])})

    def test_rejects_local_index_out_of_block(self):
        part = partition_list(4, np.ones(2))
        with pytest.raises(ScheduleError):
            CommSchedule(rank=0, partition=part, send_lists={1: np.array([7])})

    def test_rejects_unfilled_ghost_slot(self):
        part = partition_list(4, np.ones(2))
        with pytest.raises(ScheduleError, match="never filled"):
            CommSchedule(
                rank=0,
                partition=part,
                recv_lists={1: np.array([0])},
                ghost_globals=np.array([2, 3]),
            )

    def test_rejects_double_filled_slot(self):
        part = partition_list(6, np.ones(3))
        with pytest.raises(ScheduleError, match="two sources"):
            CommSchedule(
                rank=0,
                partition=part,
                recv_lists={1: np.array([0]), 2: np.array([0])},
                ghost_globals=np.array([2]),
            )


class TestLocalReferences:
    def test_counts_match_degrees(self, ordered_mesh):
        part = partition_list(ordered_mesh.num_vertices, np.ones(2))
        src, nbr = local_references(ordered_mesh, part, 0)
        lo, hi = part.interval(0)
        assert src.size == nbr.size
        assert src.size == int(ordered_mesh.degrees[lo:hi].sum())
        assert np.all((src >= lo) & (src < hi))

    def test_empty_block(self):
        g = grid_graph(3, 3)
        part = partition_list(9, [1.0, 0.0, 1.0])
        src, nbr = local_references(g, part, 1)
        assert src.size == 0 and nbr.size == 0


class TestSortedBuilders:
    def test_sort1_sort2_identical_schedules(self, ordered_mesh):
        part = partition_list(ordered_mesh.num_vertices, [0.5, 0.3, 0.2])
        for r in range(3):
            s1 = build_schedule_sort1(ordered_mesh, part, r)
            s2 = build_schedule_sort2(ordered_mesh, part, r)
            np.testing.assert_array_equal(s1.ghost_globals, s2.ghost_globals)
            assert s1.send_lists.keys() == s2.send_lists.keys()
            for d in s1.send_lists:
                np.testing.assert_array_equal(s1.send_lists[d], s2.send_lists[d])

    def test_segments_sorted_by_home_local_reference(self, ordered_mesh):
        part = partition_list(ordered_mesh.num_vertices, np.ones(4))
        sched = build_schedule_sort1(ordered_mesh, part, 2)
        for src in sched.recv_lists:
            g = sched.recv_globals(src)
            assert np.all(np.diff(g) > 0)  # ascending == ascending local ref
        for dest in sched.send_lists:
            assert np.all(np.diff(sched.send_lists[dest]) > 0)

    def test_ghosts_are_exactly_offproc_neighbors(self, ordered_mesh):
        part = partition_list(ordered_mesh.num_vertices, np.ones(3))
        sched = build_schedule_sort1(ordered_mesh, part, 1)
        lo, hi = part.interval(1)
        _, nbr = local_references(ordered_mesh, part, 1)
        expected = np.unique(nbr[(nbr < lo) | (nbr >= hi)])
        np.testing.assert_array_equal(sched.ghost_globals, expected)

    def test_single_processor_no_traffic(self, ordered_mesh):
        part = partition_list(ordered_mesh.num_vertices, [1.0])
        sched = build_schedule_sort1(ordered_mesh, part, 0)
        assert sched.ghost_size == 0
        assert not sched.send_lists

    def test_zero_communication_build(self, ordered_mesh):
        """sort1/sort2 build schedules without any messages (the symmetry
        optimization of Sec. 3.2)."""
        part = partition_list(ordered_mesh.num_vertices, np.ones(3))

        def fn(ctx):
            build_schedule_sort1(ordered_mesh, part, ctx.rank, ctx=ctx)
            build_schedule_sort2(ordered_mesh, part, ctx.rank, ctx=ctx)

        res = run_spmd(uniform_cluster(3), fn, trace=True)
        assert res.trace.message_count() == 0

    def test_sort2_charges_less_than_sort1(self, ordered_mesh):
        part = partition_list(ordered_mesh.num_vertices, np.ones(3))

        def fn(ctx):
            t0 = ctx.clock
            build_schedule_sort1(ordered_mesh, part, ctx.rank, ctx=ctx)
            t1 = ctx.clock
            build_schedule_sort2(ordered_mesh, part, ctx.rank, ctx=ctx)
            return (t1 - t0, ctx.clock - t1)

        res = run_spmd(uniform_cluster(3), fn)
        for c1, c2 in res.values:
            assert c2 < c1

    def test_cost_model_scaling(self, ordered_mesh):
        part = partition_list(ordered_mesh.num_vertices, np.ones(2))
        cheap = InspectorCostModel(sec_per_ref=1e-9, sec_per_sort_op=1e-9,
                                   sec_per_linear_op=1e-9, sec_per_translate=1e-9)

        def fn(ctx):
            build_schedule_sort1(ordered_mesh, part, ctx.rank, ctx=ctx,
                                 cost_model=cheap)
            return ctx.clock

        res = run_spmd(uniform_cluster(2), fn)
        assert max(res.values) < 1e-3


class TestSimpleBuilder:
    def test_schedule_equivalent_to_sorted(self, ordered_mesh):
        """Simple strategy produces the same logical schedule (same data
        moves) as the sorted strategies, just in request order."""
        part = partition_list(ordered_mesh.num_vertices, [0.4, 0.35, 0.25])

        def fn(ctx):
            return build_schedule_simple(ordered_mesh, part, ctx=ctx)

        res = run_spmd(uniform_cluster(3), fn)
        scheds = res.values
        for a in scheds:
            for b in scheds:
                if a.rank != b.rank:
                    a.validate_pair(b)
        # Ghost *sets* agree with the sorted builders.
        for r in range(3):
            sorted_sched = build_schedule_sort1(ordered_mesh, part, r)
            np.testing.assert_array_equal(
                np.sort(scheds[r].ghost_globals), sorted_sched.ghost_globals
            )

    def test_simple_requires_communication(self, ordered_mesh):
        part = partition_list(ordered_mesh.num_vertices, np.ones(3))

        def fn(ctx):
            build_schedule_simple(ordered_mesh, part, ctx=ctx)

        res = run_spmd(uniform_cluster(3), fn, trace=True)
        assert res.trace.message_count() > 0

    def test_simple_needs_ctx(self, ordered_mesh):
        from repro.runtime.inspector import run_inspector

        part = partition_list(ordered_mesh.num_vertices, np.ones(2))
        with pytest.raises(ScheduleError):
            run_inspector(ordered_mesh, part, 0, strategy="simple")


class TestPairwiseConsistencyProperty:
    @given(
        seed=st.integers(0, 50),
        p=st.integers(2, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_pairs_consistent_on_random_meshes(self, seed, p):
        g = perturbed_grid_mesh(7, 7, seed=seed).graph
        g = g.permute(RCBOrdering(seed=seed)(g))
        rng = np.random.default_rng(seed)
        caps = rng.dirichlet(np.ones(p)) + 0.05
        part = partition_list(g.num_vertices, caps)
        scheds = build_all_sorted(g, part)
        for a in scheds:
            for b in scheds:
                if a.rank != b.rank:
                    a.validate_pair(b)
        # Union of ghosts+locals covers every referenced index.
        for r in range(p):
            lo, hi = part.interval(r)
            _, nbr = local_references(g, part, r)
            off = np.unique(nbr[(nbr < lo) | (nbr >= hi)])
            np.testing.assert_array_equal(scheds[r].ghost_globals, off)
