"""Tests for executor gather/scatter and the Fig. 8 kernel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RankFailedError
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_graph, perturbed_grid_mesh
from repro.net.cluster import uniform_cluster
from repro.net.spmd import run_spmd
from repro.partition.intervals import partition_list
from repro.partition.rcb import RCBOrdering
from repro.runtime.executor import gather, scatter
from repro.runtime.inspector import run_inspector
from repro.runtime.kernels import (
    KernelCostModel,
    build_kernel_plan,
    run_sequential,
    sequential_kernel,
    sequential_kernel_reference,
)
from repro.runtime.schedule_builders import build_schedule_sort1


@pytest.fixture(scope="module")
def mesh():
    g = perturbed_grid_mesh(10, 10, seed=2).graph
    return g.permute(RCBOrdering()(g))


class TestGatherScatter:
    def test_gather_fetches_correct_values(self, mesh):
        n = mesh.num_vertices
        part = partition_list(n, np.ones(3))
        y = np.arange(n, dtype=np.float64) * 2.0

        def fn(ctx):
            sched = build_schedule_sort1(mesh, part, ctx.rank)
            lo, hi = part.interval(ctx.rank)
            ghost = gather(ctx, sched, y[lo:hi])
            np.testing.assert_array_equal(ghost, y[sched.ghost_globals])
            return True

        assert all(run_spmd(uniform_cluster(3), fn).values)

    def test_gather_vector_payloads(self, mesh):
        """Gather works for (n, k) per-element data, not just scalars."""
        n = mesh.num_vertices
        part = partition_list(n, np.ones(2))
        y = np.random.default_rng(0).uniform(size=(n, 3))

        def fn(ctx):
            sched = build_schedule_sort1(mesh, part, ctx.rank)
            lo, hi = part.interval(ctx.rank)
            ghost = gather(ctx, sched, y[lo:hi])
            np.testing.assert_array_equal(ghost, y[sched.ghost_globals])
            return True

        assert all(run_spmd(uniform_cluster(2), fn).values)

    def test_gather_wrong_local_size(self, mesh):
        part = partition_list(mesh.num_vertices, np.ones(2))

        def fn(ctx):
            sched = build_schedule_sort1(mesh, part, ctx.rank)
            gather(ctx, sched, np.zeros(3))  # wrong size

        with pytest.raises(RankFailedError):
            run_spmd(uniform_cluster(2), fn)

    def test_scatter_add_accumulates(self, mesh):
        """scatter(op='add') after gather implements the symmetric
        accumulate: each boundary element receives the sum of the ghost
        contributions of every rank that references it."""
        n = mesh.num_vertices
        part = partition_list(n, np.ones(3))

        def fn(ctx):
            sched = build_schedule_sort1(mesh, part, ctx.rank)
            lo, hi = part.interval(ctx.rank)
            local = np.zeros(hi - lo)
            ghost = np.ones(sched.ghost_size)  # contribute 1 per reference
            scatter(ctx, sched, ghost, local, op="add")
            return lo, local

        res = run_spmd(uniform_cluster(3), fn)
        total = np.zeros(n)
        for lo, local in res.values:
            total[lo : lo + local.size] = local
        # Element g receives one contribution per *rank* that references it.
        expected = np.zeros(n)
        for r in range(3):
            sched = build_schedule_sort1(mesh, part, r)
            expected[sched.ghost_globals] += 1.0
        np.testing.assert_array_equal(total, expected)

    def test_scatter_replace(self, mesh):
        n = mesh.num_vertices
        part = partition_list(n, np.ones(2))

        def fn(ctx):
            sched = build_schedule_sort1(mesh, part, ctx.rank)
            lo, hi = part.interval(ctx.rank)
            local = np.full(hi - lo, -1.0)
            ghost = sched.ghost_globals.astype(np.float64)
            scatter(ctx, sched, ghost, local, op="replace")
            return lo, local

        res = run_spmd(uniform_cluster(2), fn)
        for lo, local in res.values:
            touched = local >= 0
            gi = np.flatnonzero(touched) + lo
            np.testing.assert_array_equal(local[touched], gi.astype(float))

    def test_scatter_bad_op(self, mesh):
        part = partition_list(mesh.num_vertices, np.ones(2))

        def fn(ctx):
            sched = build_schedule_sort1(mesh, part, ctx.rank)
            lo, hi = part.interval(ctx.rank)
            scatter(ctx, sched, np.zeros(sched.ghost_size), np.zeros(hi - lo),
                    op="bogus")

        with pytest.raises(RankFailedError):
            run_spmd(uniform_cluster(2), fn)

    def test_scatter_callable_op(self, mesh):
        part = partition_list(mesh.num_vertices, np.ones(2))

        def fn(ctx):
            sched = build_schedule_sort1(mesh, part, ctx.rank)
            lo, hi = part.interval(ctx.rank)
            local = np.zeros(hi - lo)
            seen = []

            def op(arr, idx, vals):
                seen.append(idx.size)
                np.maximum.at(arr, idx, vals)

            scatter(ctx, sched, np.ones(sched.ghost_size), local, op=op)
            return sum(seen) > 0

        assert all(run_spmd(uniform_cluster(2), fn).values)


class TestSequentialKernel:
    def test_matches_literal_reference(self):
        g = perturbed_grid_mesh(6, 6, seed=1).graph
        y = np.random.default_rng(0).uniform(size=g.num_vertices)
        np.testing.assert_allclose(
            sequential_kernel(g, y), sequential_kernel_reference(g, y),
            rtol=1e-12,
        )

    def test_isolated_vertex_keeps_value(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        y = np.array([1.0, 3.0, 7.0])
        out = sequential_kernel(g, y)
        assert out[2] == 7.0
        assert out[0] == 3.0 and out[1] == 1.0

    def test_constant_fixed_point(self):
        g = grid_graph(5, 5)
        y = np.full(25, 4.2)
        np.testing.assert_allclose(sequential_kernel(g, y), y)

    def test_smooths_toward_mean(self):
        g = grid_graph(10, 10)
        rng = np.random.default_rng(1)
        y = rng.uniform(0, 100, 100)
        out = run_sequential(g, y, 50)
        assert out.std() < y.std() / 2

    def test_shape_validation(self):
        g = grid_graph(2, 2)
        with pytest.raises(Exception):
            sequential_kernel(g, np.zeros(5))

    @given(seed=st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_vectorized_equals_reference_property(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 25))
        m = int(rng.integers(0, n * 2))
        edges = rng.integers(0, n, size=(m, 2))
        g = CSRGraph.from_edges(n, edges)
        y = rng.uniform(-10, 10, n)
        np.testing.assert_allclose(
            sequential_kernel(g, y),
            sequential_kernel_reference(g, y),
            rtol=1e-12, atol=1e-12,
        )


class TestKernelPlan:
    def test_plan_sweep_matches_global(self, mesh):
        n = mesh.num_vertices
        part = partition_list(n, [0.5, 0.3, 0.2])
        y = np.random.default_rng(3).uniform(size=n)
        expected = sequential_kernel(mesh, y)

        def fn(ctx):
            insp = run_inspector(mesh, part, ctx.rank, strategy="sort2")
            lo, hi = part.interval(ctx.rank)
            ghost = gather(ctx, insp.schedule, y[lo:hi])
            out = insp.kernel_plan.sweep(y[lo:hi], ghost)
            np.testing.assert_allclose(out, expected[lo:hi], rtol=1e-12)
            return True

        assert all(run_spmd(uniform_cluster(3), fn).values)

    def test_plan_sweep_matches_its_reference(self, mesh):
        part = partition_list(mesh.num_vertices, np.ones(2))
        sched = build_schedule_sort1(mesh, part, 0)
        plan = build_kernel_plan(mesh, part, sched)
        lo, hi = part.interval(0)
        rng = np.random.default_rng(4)
        local = rng.uniform(size=hi - lo)
        ghost = rng.uniform(size=plan.slots.max() - (hi - lo) + 1
                            if plan.slots.max() >= hi - lo else 0)
        ghost = rng.uniform(size=sched.ghost_size)
        np.testing.assert_allclose(
            plan.sweep(local, ghost),
            plan.sweep_reference(local, ghost),
            rtol=1e-12,
        )

    def test_plan_covers_all_local_degrees(self, mesh):
        part = partition_list(mesh.num_vertices, np.ones(4))
        for r in range(4):
            sched = build_schedule_sort1(mesh, part, r)
            plan = build_kernel_plan(mesh, part, sched)
            lo, hi = part.interval(r)
            np.testing.assert_array_equal(plan.counts, mesh.degrees[lo:hi])
            assert plan.n_references == int(mesh.degrees[lo:hi].sum())

    def test_plan_with_request_order_ghosts(self, mesh):
        """Kernel plans work with the simple strategy's unsorted ghosts."""
        from repro.runtime.schedule_builders import build_schedule_simple

        n = mesh.num_vertices
        part = partition_list(n, np.ones(2))
        y = np.random.default_rng(5).uniform(size=n)
        expected = sequential_kernel(mesh, y)

        def fn(ctx):
            sched = build_schedule_simple(mesh, part, ctx=ctx)
            plan = build_kernel_plan(mesh, part, sched)
            lo, hi = part.interval(ctx.rank)
            ghost = gather(ctx, sched, y[lo:hi])
            np.testing.assert_allclose(
                plan.sweep(y[lo:hi], ghost), expected[lo:hi], rtol=1e-12
            )
            return True

        assert all(run_spmd(uniform_cluster(2), fn).values)

    def test_cost_model_calibration(self):
        """Default constants put the paper's workload near Table 4's
        97.61 s / 500 iterations on a speed-1.0 machine."""
        kc = KernelCostModel()
        per_iter = kc.sweep_seconds(2 * 44_929, 30_269)
        assert 500 * per_iter == pytest.approx(97.61, rel=0.2)


class TestKernelPlanEmptyIntervals:
    """Direct hypothesis coverage of the PR-4 empty-interval fix: ranks
    that own nothing (standby, drained, or failed) must get a well-formed
    empty plan, and the surviving ranks' sweeps must still reassemble the
    sequential result."""

    @settings(deadline=None, max_examples=15)
    @given(
        seed=st.integers(0, 2**31),
        p=st.integers(2, 6),
        empties=st.integers(1, 3),
    )
    def test_empty_interval_ranks_property(self, seed, p, empties):
        rng = np.random.default_rng(seed)
        g = perturbed_grid_mesh(
            int(rng.integers(5, 11)), int(rng.integers(5, 11)), seed=seed
        ).graph
        graph = g.permute(RCBOrdering()(g))
        n = graph.num_vertices
        caps = rng.uniform(0.2, 1.0, size=p)
        empty_ranks = rng.choice(p, size=min(empties, p - 1), replace=False)
        caps[empty_ranks] = 0.0
        part = partition_list(n, caps / caps.sum())
        y = rng.uniform(0.0, 100.0, size=n)
        expected = sequential_kernel(graph, y)

        def fn(ctx):
            insp = run_inspector(graph, part, ctx.rank, strategy="sort2",
                                 ctx=ctx)
            plan = insp.kernel_plan
            lo, hi = part.interval(ctx.rank)
            assert plan.n_local == hi - lo
            if hi == lo:
                # The empty plan must be structurally sound, not a crash:
                # no slots, no starts, and a sweep over nothing.
                assert plan.slots.size == 0
                assert plan.counts.size == 0 and plan.starts.size == 0
            ghost = gather(ctx, insp.schedule, y[lo:hi].copy())
            out = plan.sweep(y[lo:hi].copy(), ghost)
            ctx.barrier()
            np.testing.assert_allclose(out, expected[lo:hi], rtol=1e-12)
            return out.size

        res = run_spmd(uniform_cluster(p), fn)
        assert sum(res.values) == n

    def test_all_data_on_one_rank(self):
        g = perturbed_grid_mesh(6, 6, seed=0).graph
        graph = g.permute(RCBOrdering()(g))
        n = graph.num_vertices
        part = partition_list(n, [1.0, 0.0, 0.0])
        y = np.arange(n, dtype=np.float64)
        expected = sequential_kernel(graph, y)

        def fn(ctx):
            insp = run_inspector(graph, part, ctx.rank, strategy="sort2",
                                 ctx=ctx)
            lo, hi = part.interval(ctx.rank)
            ghost = gather(ctx, insp.schedule, y[lo:hi].copy())
            out = insp.kernel_plan.sweep(y[lo:hi].copy(), ghost)
            ctx.barrier()
            np.testing.assert_allclose(out, expected[lo:hi], rtol=1e-12)
            return True

        assert all(run_spmd(uniform_cluster(3), fn).values)
