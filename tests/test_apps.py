"""Tests for the application layer (smoothing, SpMV, workloads, quality)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.mesh_smoothing import smooth_mesh, verify_against_sequential
from repro.apps.sparse_matvec import (
    SymmetricPatternMatrix,
    run_parallel_spmv,
    spmv_sequential,
)
from repro.apps.workloads import (
    adaptive_testbed,
    full_scale,
    paper_workload,
    random_capabilities,
)
from repro.errors import ConfigurationError
from repro.graph.generators import grid_mesh, paper_mesh
from repro.graph.ops import to_scipy
from repro.net.cluster import sun4_cluster, uniform_cluster
from repro.partition.ordering import IdentityOrdering
from repro.partition.quality import compare_orderings, evaluate_ordering
from repro.partition.rcb import RCBOrdering
from repro.runtime.program import ProgramConfig


class TestMeshSmoothing:
    def test_accepts_mesh_object(self):
        mesh = grid_mesh(8, 8)
        res = smooth_mesh(mesh, uniform_cluster(2), iterations=5)
        assert res.values.shape == (64,)
        assert res.makespan > 0

    def test_accepts_graph(self):
        g = paper_mesh(300, seed=1)
        res = smooth_mesh(g, uniform_cluster(2), iterations=5)
        assert res.values.shape == (g.num_vertices,)

    def test_verify_passes_for_correct_run(self):
        g = paper_mesh(300, seed=1)
        res = smooth_mesh(g, sun4_cluster(3), iterations=8)
        err = verify_against_sequential(g, res)
        assert err < 1e-9

    def test_verify_catches_corruption(self):
        g = paper_mesh(300, seed=1)
        res = smooth_mesh(g, uniform_cluster(2), iterations=5)
        res.values = res.values + 1.0
        with pytest.raises(AssertionError):
            verify_against_sequential(g, res)

    def test_explicit_config_wins(self):
        g = paper_mesh(300, seed=1)
        cfg = ProgramConfig(iterations=4, strategy="sort1")
        res = smooth_mesh(g, uniform_cluster(2), iterations=99, config=cfg)
        assert res.report.config.iterations == 4

    def test_custom_y0(self):
        g = paper_mesh(300, seed=1)
        y0 = np.linspace(0, 1, g.num_vertices)
        res = smooth_mesh(g, uniform_cluster(2), iterations=5, y0=y0)
        assert verify_against_sequential(g, res, y0=y0) < 1e-9


class TestSparseMatvec:
    def test_matrix_validation(self):
        g = paper_mesh(100, seed=0)
        with pytest.raises(ConfigurationError):
            SymmetricPatternMatrix(g, np.ones(3), np.ones(g.num_vertices))
        with pytest.raises(ConfigurationError):
            SymmetricPatternMatrix(g, np.ones(g.indices.size), np.ones(3))

    def test_sequential_matches_scipy(self):
        g = paper_mesh(200, seed=2)
        mat = SymmetricPatternMatrix.laplacian_like(g, shift=0.3)
        import scipy.sparse as sp

        A = sp.diags(mat.diag) - to_scipy(g)
        x = np.random.default_rng(0).uniform(size=g.num_vertices)
        np.testing.assert_allclose(spmv_sequential(mat, x), A @ x, rtol=1e-12)

    def test_parallel_single_product_exact(self):
        g = paper_mesh(200, seed=2)
        mat = SymmetricPatternMatrix.laplacian_like(g)
        x0 = np.random.default_rng(1).uniform(size=g.num_vertices)
        seq = spmv_sequential(mat, x0)
        par, makespan = run_parallel_spmv(
            mat, uniform_cluster(3), x0, iterations=1, normalize=False
        )
        np.testing.assert_allclose(par, seq, rtol=1e-12)
        assert makespan > 0

    def test_permuted_matrix_consistent(self):
        g = paper_mesh(150, seed=3)
        mat = SymmetricPatternMatrix.laplacian_like(g)
        perm = RCBOrdering()(g)
        pm = mat.permuted(perm)
        x = np.random.default_rng(2).uniform(size=g.num_vertices)
        xp = np.empty_like(x)
        xp[perm] = x
        np.testing.assert_allclose(
            spmv_sequential(pm, xp)[perm], spmv_sequential(mat, x), rtol=1e-12
        )

    def test_identity_ordering_supported(self):
        g = paper_mesh(150, seed=3)
        mat = SymmetricPatternMatrix.laplacian_like(g)
        x0 = np.ones(g.num_vertices)
        par, _ = run_parallel_spmv(
            mat, uniform_cluster(2), x0, iterations=1, normalize=False,
            ordering=IdentityOrdering(),
        )
        np.testing.assert_allclose(par, spmv_sequential(mat, x0), rtol=1e-12)

    def test_input_validation(self):
        g = paper_mesh(100, seed=0)
        mat = SymmetricPatternMatrix.laplacian_like(g)
        with pytest.raises(ConfigurationError):
            run_parallel_spmv(mat, uniform_cluster(2), np.zeros(5))
        with pytest.raises(ConfigurationError):
            run_parallel_spmv(mat, uniform_cluster(2),
                              np.zeros(g.num_vertices), iterations=0)


class TestWorkloads:
    def test_paper_workload_shape(self):
        w = paper_workload(n_vertices=400, iterations=7, seed=1)
        assert w.n == w.graph.num_vertices
        assert w.iterations == 7
        assert w.y0.shape == (w.n,)
        assert "mesh" in w.label

    def test_paper_workload_reproducible(self):
        a = paper_workload(n_vertices=400, iterations=5, seed=9)
        b = paper_workload(n_vertices=400, iterations=5, seed=9)
        np.testing.assert_array_equal(a.y0, b.y0)

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_scale()
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_scale()
        w = paper_workload(seed=1, n_vertices=300)  # explicit n overrides
        assert w.n <= 300

    def test_random_capabilities_normalized(self):
        rng = np.random.default_rng(0)
        caps = random_capabilities(6, rng)
        assert caps.sum() == pytest.approx(1.0)
        assert caps.min() >= 0.019

    def test_adaptive_testbed_load(self):
        cl = adaptive_testbed(3, competing_load=2.0)
        assert cl.processors[0].effective_speed(0.0) == pytest.approx(
            cl.processors[0].speed / 3.0
        )


class TestOrderingQuality:
    def test_evaluate_ordering_fields(self):
        g = paper_mesh(300, seed=5)
        rep = evaluate_ordering(g, RCBOrdering(), part_counts=(2, 4))
        assert rep.name == "rcb"
        assert set(rep.cuts) == {2, 4}
        assert rep.mean_span > 0

    def test_compare_orderings_rows(self):
        g = paper_mesh(300, seed=5)
        reps = compare_orderings(g, [RCBOrdering(), IdentityOrdering()], (2,))
        assert len(reps) == 2
        row = reps[0].as_row((2,))
        assert row[0] == "rcb" and len(row) == 4

    def test_nonuniform_capabilities_splits(self):
        g = paper_mesh(300, seed=5)
        rep = evaluate_ordering(
            g, RCBOrdering(), part_counts=(3,),
            capabilities=np.array([3.0, 1.0, 1.0]),
        )
        assert rep.cuts[3] >= 0
