"""Tests for mesh structures and graph/mesh generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    PAPER_MESH_EDGES,
    PAPER_MESH_VERTICES,
    airfoil_mesh,
    delaunay_mesh,
    grid_graph,
    grid_mesh,
    paper_mesh,
    perturbed_grid_mesh,
    random_geometric_graph,
    thin_to_edge_count,
)
from repro.graph.mesh import Mesh
from repro.graph.ops import connected_components


class TestMesh:
    def test_basic(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        m = Mesh(pts, np.array([[0, 1, 2]]))
        assert m.num_points == 3
        assert m.num_cells == 1
        assert m.num_edges == 3
        assert m.dim == 2

    def test_graph_carries_coords(self):
        m = grid_mesh(3, 3)
        assert m.graph.coords is not None
        np.testing.assert_array_equal(m.graph.coords, m.points)

    def test_rejects_bad_cells(self):
        pts = np.zeros((3, 2))
        with pytest.raises(GraphError):
            Mesh(pts, np.array([[0, 1, 9]]))
        with pytest.raises(GraphError):
            Mesh(pts, np.array([[0, 1]]))  # wrong arity for 2-D

    def test_rejects_bad_points(self):
        with pytest.raises(GraphError):
            Mesh(np.zeros((3, 5)), np.zeros((1, 6), dtype=int))

    def test_graph_cached(self):
        m = grid_mesh(3, 3)
        assert m.graph is m.graph


class TestGridGenerators:
    def test_grid_graph_edge_count(self):
        g = grid_graph(4, 5)
        assert g.num_vertices == 20
        assert g.num_edges == 4 * 4 + 3 * 5  # vert rows x horiz + ...

    def test_grid_graph_degree_profile(self):
        g = grid_graph(3, 3)
        degs = sorted(g.degrees.tolist())
        assert degs == [2, 2, 2, 2, 3, 3, 3, 3, 4]

    def test_grid_graph_single_vertex(self):
        g = grid_graph(1, 1)
        assert g.num_vertices == 1 and g.num_edges == 0

    def test_grid_graph_rejects_zero(self):
        with pytest.raises(GraphError):
            grid_graph(0, 3)

    def test_grid_mesh_triangle_count(self):
        m = grid_mesh(4, 3)
        assert m.num_cells == 2 * 3 * 2

    def test_grid_mesh_rejects_degenerate(self):
        with pytest.raises(GraphError):
            grid_mesh(1, 5)


class TestUnstructuredGenerators:
    def test_delaunay_connected(self):
        rng = np.random.default_rng(0)
        m = delaunay_mesh(rng.uniform(size=(50, 2)))
        assert connected_components(m.graph)[0] == 1

    def test_delaunay_rejects_too_few(self):
        with pytest.raises(GraphError):
            delaunay_mesh(np.zeros((2, 2)))

    def test_delaunay_rejects_3d(self):
        with pytest.raises(GraphError):
            delaunay_mesh(np.zeros((10, 3)))

    def test_perturbed_grid_reproducible(self):
        a = perturbed_grid_mesh(10, 10, seed=5)
        b = perturbed_grid_mesh(10, 10, seed=5)
        np.testing.assert_array_equal(a.points, b.points)

    def test_perturbed_grid_seed_changes_mesh(self):
        a = perturbed_grid_mesh(10, 10, seed=5)
        b = perturbed_grid_mesh(10, 10, seed=6)
        assert not np.array_equal(a.points, b.points)

    def test_perturbed_grid_rejects_big_jitter(self):
        with pytest.raises(GraphError):
            perturbed_grid_mesh(5, 5, jitter=0.7)

    def test_airfoil_nonconvex_hole(self):
        m = airfoil_mesh(1200, seed=1, chord=4.0, thickness=0.5)
        # No mesh point inside the elliptic airfoil.
        inside = (m.points[:, 0] / 2.0) ** 2 + (m.points[:, 1] / 1.0) ** 2 < 1.0
        assert not inside.any()
        assert connected_components(m.graph)[0] >= 1

    def test_airfoil_rejects_tiny(self):
        with pytest.raises(GraphError):
            airfoil_mesh(10)

    def test_random_geometric_connected(self):
        g = random_geometric_graph(300, seed=2)
        assert connected_components(g)[0] == 1
        assert g.coords is not None

    def test_random_geometric_3d(self):
        g = random_geometric_graph(200, seed=3, dim=3)
        assert g.coords.shape[1] == 3

    def test_random_geometric_rejects_bad_dim(self):
        with pytest.raises(GraphError):
            random_geometric_graph(50, dim=4)


class TestThinning:
    def test_thin_exact_count(self):
        g = perturbed_grid_mesh(12, 12, seed=1).graph
        target = g.num_vertices + 50
        thinned = thin_to_edge_count(g, target, seed=0)
        assert thinned.num_edges == target

    def test_thin_preserves_connectivity(self):
        g = perturbed_grid_mesh(12, 12, seed=1).graph
        thinned = thin_to_edge_count(g, g.num_vertices - 1, seed=0)
        assert connected_components(thinned)[0] == 1

    def test_thin_noop_at_current_count(self):
        g = grid_graph(5, 5)
        assert thin_to_edge_count(g, g.num_edges) is g

    def test_thin_rejects_increase(self):
        g = grid_graph(5, 5)
        with pytest.raises(GraphError):
            thin_to_edge_count(g, g.num_edges + 1)

    def test_thin_rejects_below_tree(self):
        g = grid_graph(5, 5)
        with pytest.raises(GraphError):
            thin_to_edge_count(g, g.num_vertices - 2)

    def test_thin_keeps_short_edges(self):
        g = perturbed_grid_mesh(10, 10, seed=4).graph
        thinned = thin_to_edge_count(g, g.num_vertices + 20, seed=0)
        def mean_len(gr):
            e = gr.edge_array()
            return np.linalg.norm(gr.coords[e[:, 0]] - gr.coords[e[:, 1]], axis=1).mean()
        assert mean_len(thinned) <= mean_len(g) + 1e-9


class TestPaperMesh:
    def test_edge_ratio_matches_paper(self):
        g = paper_mesh(3000, seed=1)
        ratio = g.num_edges / g.num_vertices
        paper_ratio = PAPER_MESH_EDGES / PAPER_MESH_VERTICES
        assert abs(ratio - paper_ratio) < 0.05

    def test_connected(self):
        g = paper_mesh(1500, seed=2)
        assert connected_components(g)[0] == 1

    def test_has_coordinates(self):
        assert paper_mesh(600, seed=3).coords is not None

    def test_reproducible(self):
        a, b = paper_mesh(800, seed=9), paper_mesh(800, seed=9)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_explicit_edge_target(self):
        g = paper_mesh(1000, n_edges=1300, seed=4)
        assert g.num_edges == 1300

    def test_rejects_tiny(self):
        with pytest.raises(GraphError):
            paper_mesh(4)


class TestStreamedGridGraph:
    """The streamed CSR builder must match the edge-list path exactly."""

    @pytest.mark.parametrize("nx,ny", [(1, 1), (2, 1), (1, 6), (8, 8), (13, 7)])
    def test_matches_grid_graph(self, nx, ny):
        from repro.graph.generators import grid_graph, streamed_grid_graph

        a = grid_graph(nx, ny)
        b = streamed_grid_graph(nx, ny, block_rows=3)
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.coords, b.coords)

    def test_block_rows_irrelevant(self):
        from repro.graph.generators import streamed_grid_graph

        a = streamed_grid_graph(20, 15, block_rows=1)
        b = streamed_grid_graph(20, 15, block_rows=1000)
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_rejects_bad_arguments(self):
        from repro.errors import GraphError
        from repro.graph.generators import streamed_grid_graph

        with pytest.raises(GraphError):
            streamed_grid_graph(0, 5)
        with pytest.raises(GraphError):
            streamed_grid_graph(5, 5, block_rows=0)


class TestScaleMesh:
    def test_tiers_and_families(self):
        from repro.graph.generators import SCALE_TIERS, scale_mesh

        g = scale_mesh("10k")
        assert g.num_vertices == 10_000  # 100^2 exactly
        geo = scale_mesh("10k", family="geometric", seed=3)
        assert 0.9 * SCALE_TIERS["10k"] <= geo.num_vertices <= SCALE_TIERS["10k"]
        assert geo.coords is not None

    def test_unknown_tier_or_family(self):
        from repro.errors import GraphError
        from repro.graph.generators import scale_mesh

        with pytest.raises(GraphError):
            scale_mesh("3k")
        with pytest.raises(GraphError):
            scale_mesh("10k", family="torus")

    def test_non_square_tier_warns_with_actual_count(self):
        from repro.graph.generators import scale_mesh

        with pytest.warns(RuntimeWarning, match=r"316x316 = 99856"):
            g = scale_mesh("100k")
        assert g.num_vertices == 99_856  # 316^2, not the nominal 100_000

    def test_non_square_tier_exact_raises(self):
        from repro.errors import GraphError
        from repro.graph.generators import scale_mesh

        with pytest.raises(GraphError, match=r"99856"):
            scale_mesh("100k", exact=True)

    def test_square_tier_exact_is_silent(self):
        import warnings

        from repro.graph.generators import scale_mesh

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            g = scale_mesh("10k", exact=True)
        assert g.num_vertices == 10_000
