"""Tests for load monitoring, the controller, and efficiency metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, LoadBalanceError
from repro.net.cluster import heterogeneous_cluster, uniform_cluster
from repro.net.loadmodel import ConstantLoad
from repro.net.spmd import run_spmd
from repro.partition.intervals import partition_list
from repro.runtime.adaptive import LoadBalanceConfig, controller_check
from repro.runtime.efficiency import (
    adaptive_cluster_efficiency,
    adaptive_efficiency,
    cluster_efficiency,
    nonuniform_efficiency,
    sequential_times,
)
from repro.runtime.monitor import LoadMonitor


class TestLoadMonitor:
    def test_avg_time_per_item(self):
        m = LoadMonitor()
        m.record(2.0, 100)
        m.record(2.0, 100)
        assert m.avg_time_per_item() == pytest.approx(0.02)
        assert m.capability() == pytest.approx(50.0)

    def test_window_reset(self):
        m = LoadMonitor()
        m.record(1.0, 10)
        m.reset_window()
        assert not m.has_window
        assert m.total_items == 10  # totals survive the reset
        m.record(4.0, 10)
        assert m.avg_time_per_item() == pytest.approx(0.4)

    def test_empty_window_raises(self):
        with pytest.raises(LoadBalanceError):
            LoadMonitor().avg_time_per_item()

    def test_rejects_negative_sample(self):
        with pytest.raises(LoadBalanceError):
            LoadMonitor().record(-1.0, 5)

    def test_sample_count(self):
        m = LoadMonitor()
        for _ in range(3):
            m.record(0.5, 5)
        assert m.samples == 3


class TestLoadBalanceConfig:
    def test_validation(self):
        with pytest.raises(LoadBalanceError):
            LoadBalanceConfig(check_interval=0)
        with pytest.raises(LoadBalanceError):
            LoadBalanceConfig(profitability_margin=-1.0)
        with pytest.raises(LoadBalanceError):
            LoadBalanceConfig(element_nbytes=0)


class TestControllerCheck:
    def run_check(self, cluster, times_per_item, n=1000, remaining=100,
                  config=None, part=None):
        config = config or LoadBalanceConfig()
        part = part or partition_list(n, np.ones(cluster.size))

        def fn(ctx):
            return controller_check(
                ctx, part, times_per_item[ctx.rank], remaining, config
            )

        return run_spmd(cluster, fn)

    def test_decision_broadcast_to_all(self):
        res = self.run_check(uniform_cluster(3), [1e-4, 1e-4, 1e-4])
        decisions = res.values
        assert all(d.remap == decisions[0].remap for d in decisions)

    def test_balanced_load_no_remap(self):
        res = self.run_check(uniform_cluster(3), [1e-4] * 3)
        assert not res.values[0].remap

    def test_imbalance_triggers_remap(self):
        # Rank 0 is 3x slower per item: predicted savings are large.
        res = self.run_check(uniform_cluster(3), [3e-4, 1e-4, 1e-4],
                             n=30_000, remaining=400)
        d = res.values[0]
        assert d.remap
        assert d.new_partition is not None
        # The slow rank gets a smaller share.
        sizes = d.new_partition.sizes()
        assert sizes[0] < sizes[1]
        assert d.predicted_balanced < d.predicted_current

    def test_few_remaining_iterations_not_profitable(self):
        res = self.run_check(uniform_cluster(3), [3e-4, 1e-4, 1e-4],
                             n=30_000, remaining=0)
        assert not res.values[0].remap

    def test_margin_blocks_marginal_remaps(self):
        strict = LoadBalanceConfig(profitability_margin=1e9)
        res = self.run_check(uniform_cluster(3), [3e-4, 1e-4, 1e-4],
                             n=30_000, remaining=400, config=strict)
        assert not res.values[0].remap

    def test_without_mcr_keeps_arrangement(self):
        cfg = LoadBalanceConfig(use_mcr=False)
        part = partition_list(1000, np.ones(3), arrangement=[2, 0, 1])
        res = self.run_check(uniform_cluster(3), [3e-4, 1e-4, 1e-4],
                             n=1000, remaining=500, config=cfg, part=part)
        d = res.values[0]
        if d.new_partition is not None:
            np.testing.assert_array_equal(d.new_partition.owners, [2, 0, 1])

    def test_invalid_load_report_fails(self):
        from repro.errors import RankFailedError

        with pytest.raises(RankFailedError):
            self.run_check(uniform_cluster(2), [0.0, 1e-4])

    def test_negative_remaining_rejected(self):
        from repro.errors import RankFailedError

        with pytest.raises(RankFailedError):
            self.run_check(uniform_cluster(2), [1e-4, 1e-4], remaining=-1)


class TestEfficiency:
    def test_equal_machines_equals_classic(self):
        # 4 machines, T_i = 100 each, T_par = 30: classic E = 100/(4*30).
        assert nonuniform_efficiency(30.0, [100.0] * 4) == pytest.approx(
            100.0 / 120.0
        )

    def test_perfect_parallelization(self):
        # Combined rate = sum of rates; no overhead -> E = 1.
        seq = [10.0, 20.0]
        t_par = 1.0 / (1 / 10 + 1 / 20)
        assert nonuniform_efficiency(t_par, seq) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            nonuniform_efficiency(0.0, [1.0])
        with pytest.raises(ConfigurationError):
            nonuniform_efficiency(1.0, [])
        with pytest.raises(ConfigurationError):
            nonuniform_efficiency(1.0, [0.0])

    def test_adaptive_efficiency(self):
        assert adaptive_efficiency([0.5, 0.5]) == pytest.approx(1.0)
        assert adaptive_efficiency([1.0, 1.0]) == pytest.approx(0.5)

    def test_adaptive_validation(self):
        with pytest.raises(ConfigurationError):
            adaptive_efficiency([])
        with pytest.raises(ConfigurationError):
            adaptive_efficiency([-0.1])
        with pytest.raises(ConfigurationError):
            adaptive_efficiency([0.0, 0.0])

    def test_sequential_times_speeds(self):
        cl = heterogeneous_cluster([1.0, 0.5])
        np.testing.assert_allclose(sequential_times(cl, 10.0), [10.0, 20.0])

    def test_sequential_times_with_load(self):
        cl = uniform_cluster(1).with_load(0, ConstantLoad(1.0))
        assert sequential_times(cl, 10.0)[0] == pytest.approx(20.0)

    def test_cluster_efficiency_bound(self):
        cl = heterogeneous_cluster([1.0, 0.5, 0.25])
        # Ideal time = W / sum(speeds).
        ideal = 10.0 / 1.75
        assert cluster_efficiency(cl, ideal, 10.0) == pytest.approx(1.0)
        assert cluster_efficiency(cl, 2 * ideal, 10.0) == pytest.approx(0.5)

    def test_adaptive_cluster_efficiency(self):
        cl = uniform_cluster(2).with_load(0, ConstantLoad(1.0))
        # During T=10: p0 can do 5 units, p1 can do 10; W=15 -> f sums to 1.
        assert adaptive_cluster_efficiency(cl, 10.0, 15.0) == pytest.approx(1.0)

    def test_work_seconds_validation(self):
        cl = uniform_cluster(1)
        with pytest.raises(ConfigurationError):
            sequential_times(cl, 0.0)
        with pytest.raises(ConfigurationError):
            adaptive_cluster_efficiency(cl, 1.0, -2.0)
