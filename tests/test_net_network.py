"""Tests for network cost models (point-to-point, Ethernet, switched)."""

from __future__ import annotations

import pytest

from repro.net.network import (
    ETHERNET_10MBIT,
    ETHERNET_100MBIT,
    PointToPointNetwork,
    SharedEthernet,
    SwitchedNetwork,
)


class TestPointToPoint:
    def test_cost_formula(self):
        net = PointToPointNetwork(
            latency=1e-3, bandwidth=1e6, per_message_overhead=5e-4
        )
        arrival = net.send(0, 1, 1000, 2.0)
        assert arrival == pytest.approx(2.0 + 5e-4 + 1e-3 + 1e-3)

    def test_empty_message_still_costs(self):
        net = PointToPointNetwork()
        assert net.send(0, 1, 0, 0.0) > 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PointToPointNetwork().send(0, 1, -1, 0.0)

    def test_no_contention(self):
        net = PointToPointNetwork()
        a1 = net.send(0, 1, 10_000, 1.0)
        a2 = net.send(2, 1, 10_000, 1.0)
        assert a1 == a2  # same parameters, independent of prior traffic

    def test_injection_done_before_arrival(self):
        net = PointToPointNetwork()
        t = 3.0
        assert net.injection_done(0, 1, 5000, t) <= net.send(0, 1, 5000, t)

    def test_message_cost_matches_send_delta(self):
        net = PointToPointNetwork()
        assert net.send(0, 1, 4096, 10.0) - 10.0 == pytest.approx(
            net.message_cost(4096)
        )

    def test_sequential_multicast_fallback(self):
        net = PointToPointNetwork()
        assert not net.supports_multicast
        arrivals = net.multicast(0, [1, 2, 3], 100_000, 0.0)
        # Sequential unicasts: each later copy leaves after the previous.
        assert arrivals[0] < arrivals[1] < arrivals[2]

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            PointToPointNetwork(bandwidth=0.0)
        with pytest.raises(ValueError):
            PointToPointNetwork(latency=-1.0)


class TestSharedEthernet:
    def test_contention_serializes(self):
        net = SharedEthernet(latency=0.0, bandwidth=1e6, per_message_overhead=0.0)
        a1 = net.send(0, 1, 1_000_000, 0.0)  # 1 second frame
        a2 = net.send(2, 3, 1_000_000, 0.0)  # must wait for the medium
        assert a1 == pytest.approx(1.0)
        assert a2 == pytest.approx(2.0)

    def test_reset_clears_medium(self):
        net = SharedEthernet(latency=0.0, bandwidth=1e6, per_message_overhead=0.0)
        net.send(0, 1, 1_000_000, 0.0)
        net.reset()
        assert net.send(2, 3, 1_000_000, 0.0) == pytest.approx(1.0)

    def test_multicast_single_frame(self):
        net = SharedEthernet(latency=1e-3, bandwidth=1e6, per_message_overhead=0.0)
        arrivals = net.multicast(0, [1, 2, 3, 4], 10_000, 0.0)
        assert len(arrivals) == 4
        assert len(set(arrivals)) == 1  # all destinations hear one frame

    def test_multicast_empty_dests(self):
        assert SharedEthernet().multicast(0, [], 100, 0.0) == []

    def test_idle_medium_no_extra_delay(self):
        net = SharedEthernet(latency=1e-3, bandwidth=1.25e6, per_message_overhead=5e-4)
        p2p = PointToPointNetwork(
            latency=1e-3, bandwidth=1.25e6, per_message_overhead=5e-4
        )
        assert net.send(0, 1, 5000, 10.0) == pytest.approx(p2p.send(0, 1, 5000, 10.0))

    def test_presets(self):
        slow, fast = ETHERNET_10MBIT(), ETHERNET_100MBIT()
        assert fast.bandwidth > slow.bandwidth
        assert fast.send(0, 1, 100_000, 0.0) < slow.send(0, 1, 100_000, 0.0)


class TestSwitchedNetwork:
    def test_distinct_ports_parallel(self):
        net = SwitchedNetwork(latency=0.0, bandwidth=1e6, per_message_overhead=0.0)
        a1 = net.send(0, 1, 1_000_000, 0.0)
        a2 = net.send(2, 3, 1_000_000, 0.0)
        assert a1 == pytest.approx(1.0)
        assert a2 == pytest.approx(1.0)  # different port: no waiting

    def test_same_port_serializes(self):
        net = SwitchedNetwork(latency=0.0, bandwidth=1e6, per_message_overhead=0.0)
        a1 = net.send(0, 5, 1_000_000, 0.0)
        a2 = net.send(2, 5, 1_000_000, 0.0)
        assert a2 == pytest.approx(a1 + 1.0)

    def test_multicast_replicated_at_switch(self):
        net = SwitchedNetwork(latency=0.0, bandwidth=1e6, per_message_overhead=0.0)
        arrivals = net.multicast(0, [1, 2], 1_000_000, 0.0)
        assert arrivals[0] == pytest.approx(1.0)
        assert arrivals[1] == pytest.approx(1.0)

    def test_reset(self):
        net = SwitchedNetwork(latency=0.0, bandwidth=1e6, per_message_overhead=0.0)
        net.send(0, 1, 1_000_000, 0.0)
        net.reset()
        assert net.send(2, 1, 1_000_000, 0.0) == pytest.approx(1.0)

    def test_faster_than_ethernet(self):
        eth = ETHERNET_10MBIT()
        atm = SwitchedNetwork()
        assert atm.send(0, 1, 100_000, 0.0) < eth.send(0, 1, 100_000, 0.0)


class TestSharedEthernetContention:
    """Regression: injection_done must reflect the *granted* medium slot."""

    def test_injection_done_sees_contention(self):
        net = SharedEthernet(latency=0.0, bandwidth=1e6, per_message_overhead=0.0)
        net.send(0, 1, 1_000_000, 0.0)  # holds the medium [0, 1]
        net.send(2, 3, 1_000_000, 0.0)  # granted [1, 2]
        # Sender 2's frame left the medium at t=2, not at the
        # contention-free 0 + serialization = 1.
        assert net.injection_done(2, 3, 1_000_000, 0.0) == pytest.approx(2.0)

    def test_injection_done_uncontended_unchanged(self):
        net = SharedEthernet(latency=1e-3, bandwidth=1.25e6, per_message_overhead=5e-4)
        net.send(0, 1, 5000, 10.0)
        expected = 10.0 + 5e-4 + 5000 / 1.25e6
        assert net.injection_done(0, 1, 5000, 10.0) == pytest.approx(expected)

    def test_unmatched_query_contention_free(self):
        # A cost-estimator probe (no prior send) gets the optimistic bound.
        net = SharedEthernet(latency=0.0, bandwidth=1e6, per_message_overhead=0.0)
        assert net.injection_done(4, 5, 1_000_000, 3.0) == pytest.approx(4.0)

    def test_sequential_fallback_cannot_overlap_own_frames(self):
        # Drive the base-class sequential-unicast fallback over the shared
        # medium: with the bug, every copy was injected at t_send and the
        # later frames queued behind an already-stale injection estimate.
        from repro.net.network import NetworkModel

        net = SharedEthernet(latency=0.0, bandwidth=1e6, per_message_overhead=0.0)
        arrivals = NetworkModel.multicast(net, 0, [1, 2, 3], 1_000_000, 0.0)
        # Each 1-second frame must fully occupy the medium before the next
        # copy is injected: arrivals at exactly 1, 2, 3 seconds.
        assert arrivals == pytest.approx([1.0, 2.0, 3.0])

    def test_multicast_injection_done_matches_grant(self):
        net = SharedEthernet(latency=0.0, bandwidth=1e6, per_message_overhead=0.0)
        net.send(0, 1, 1_000_000, 0.0)            # medium busy until t=1
        net.multicast(2, [3, 4], 500_000, 0.0)    # granted [1, 1.5]
        # The comm layer queries with dests[0] after a multicast.
        assert net.injection_done(2, 3, 500_000, 0.0) == pytest.approx(1.5)

    def test_reset_clears_grants(self):
        net = SharedEthernet(latency=0.0, bandwidth=1e6, per_message_overhead=0.0)
        net.send(0, 1, 1_000_000, 0.0)
        net.send(2, 3, 1_000_000, 0.0)
        net.reset()
        assert net.injection_done(2, 3, 1_000_000, 0.0) == pytest.approx(1.0)


@pytest.mark.parametrize(
    "factory",
    [PointToPointNetwork, SharedEthernet, SwitchedNetwork],
    ids=["p2p", "ethernet", "switched"],
)
class TestNegativeSizeRejected:
    """Regression: multicast must validate nbytes like send does."""

    def test_send_rejects(self, factory):
        with pytest.raises(ValueError, match="nbytes"):
            factory().send(0, 1, -1, 0.0)

    def test_multicast_rejects(self, factory):
        with pytest.raises(ValueError, match="nbytes"):
            factory().multicast(0, [1, 2], -1, 0.0)
