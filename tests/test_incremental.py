"""Tests for the incremental inspector rebuild and the bulk mailbox path.

Pins the module's two contracts: the interval-diff classifier tiles the
old/new intervals exactly (hypothesis property suite), and a patched
``InspectorResult`` is bit-identical — array for array, and through the
kernel sweep — to a from-scratch build (randomized remap differentials,
both backends, chained patches included).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommunicationError, ConfigurationError, ScheduleError
from repro.graph.generators import grid_graph, paper_mesh, perturbed_grid_mesh
from repro.net.cluster import adaptive_cluster
from repro.net.mailbox import Mailbox
from repro.net.message import ANY_SOURCE, ANY_TAG, Message, payload_nbytes
from repro.partition.intervals import IntervalPartition
from repro.runtime.adaptive import LoadBalanceConfig
from repro.runtime.incremental import (
    IncrementalInspector,
    classify_elements,
    diff_interval,
    inspector_results_equal,
)
from repro.runtime.inspector import run_inspector
from repro.runtime.kernels import run_sequential
from repro.runtime.program import ProgramConfig, run_program


def random_partition(n: int, p: int, rng: np.random.Generator) -> IntervalPartition:
    cuts = np.sort(rng.integers(0, n + 1, size=p - 1))
    bounds = np.concatenate([[0], cuts, [n]]).astype(np.intp)
    return IntervalPartition(bounds, np.arange(p, dtype=np.intp))


def shifted_partition(
    base: IntervalPartition, rng: np.random.Generator, mag: int
) -> IntervalPartition:
    """Jitter each interior bound by up to ``mag``, staying monotone."""
    bounds = np.array(base.bounds, dtype=np.intp)
    n = int(bounds[-1])
    for b in range(1, bounds.size - 1):
        lo = int(bounds[b - 1])
        hi = int(bounds[b + 1]) if b + 1 < bounds.size - 1 else n
        new = int(bounds[b]) + int(rng.integers(-mag, mag + 1))
        bounds[b] = min(max(new, lo), hi)
    return IntervalPartition(bounds, base.owners)


@st.composite
def partition_pairs(draw):
    n = draw(st.integers(1, 400))
    p = draw(st.integers(1, 6))
    owners = np.arange(p, dtype=np.intp)

    def bounds():
        cuts = sorted(
            draw(st.lists(st.integers(0, n), min_size=p - 1, max_size=p - 1))
        )
        return np.concatenate([[0], cuts, [n]]).astype(np.intp)

    old = IntervalPartition(bounds(), owners)
    new = IntervalPartition(bounds(), owners)
    rank = draw(st.integers(0, p - 1))
    return old, new, rank


class TestDiffInterval:
    @given(pair=partition_pairs())
    @settings(max_examples=150, deadline=None)
    def test_tiles_old_and_new_exactly(self, pair):
        old, new, rank = pair
        d = diff_interval(old, new, rank)
        kept, gained, lost = classify_elements(old, new, rank)
        lo0, hi0 = old.interval(rank)
        lo1, hi1 = new.interval(rank)
        # kept + lost tile the old interval; kept + gained tile the new.
        np.testing.assert_array_equal(
            np.sort(np.concatenate([kept, lost])),
            np.arange(lo0, hi0, dtype=np.intp),
        )
        np.testing.assert_array_equal(
            np.sort(np.concatenate([kept, gained])),
            np.arange(lo1, hi1, dtype=np.intp),
        )
        # No overlaps between the classes.
        assert not np.intersect1d(kept, lost).size
        assert not np.intersect1d(kept, gained).size
        assert not np.intersect1d(gained, lost).size
        # Counts agree with the structural ranges.
        assert d.n_kept == kept.size
        assert d.n_gained == gained.size
        assert d.n_lost == lost.size

    @given(pair=partition_pairs())
    @settings(max_examples=150, deadline=None)
    def test_empty_diff_iff_interval_unmoved(self, pair):
        old, new, rank = pair
        d = diff_interval(old, new, rank)
        lo0, hi0 = old.interval(rank)
        lo1, hi1 = new.interval(rank)
        # An empty interval that "moves" (e.g. (0,0) -> (1,1)) still holds
        # zero elements, so the diff is empty even though the bounds differ.
        unmoved = (lo0, hi0) == (lo1, hi1) or (hi0 - lo0 == 0 and hi1 - lo1 == 0)
        assert d.is_empty == unmoved
        if d.is_empty:
            assert d.n_lost == 0 and d.n_gained == 0
            assert d.keep_hi - d.keep_lo == hi0 - lo0

    def test_disjoint_move_loses_and_gains_everything(self):
        owners = np.arange(2, dtype=np.intp)
        old = IntervalPartition(np.array([0, 4, 10]), owners)
        new = IntervalPartition(np.array([0, 8, 10]), owners)
        d = diff_interval(old, new, 1)
        assert d.n_kept == 2  # [8, 10)
        d0 = diff_interval(
            IntervalPartition(np.array([0, 3, 10]), owners),
            IntervalPartition(np.array([0, 0, 10]), owners),
            0,
        )
        assert d0.n_kept == 0
        assert d0.lost == ((0, 3),)
        assert d0.gained == ()

    def test_mismatched_sizes_rejected(self):
        owners = np.arange(2, dtype=np.intp)
        a = IntervalPartition(np.array([0, 5, 10]), owners)
        b = IntervalPartition(np.array([0, 5, 12]), owners)
        with pytest.raises(ScheduleError):
            diff_interval(a, b, 0)


@pytest.fixture(scope="module")
def meshes():
    return [
        grid_graph(12, 17),
        perturbed_grid_mesh(15, 15, jitter=0.3, seed=3).graph,
    ]


class TestIncrementalDifferential:
    @pytest.mark.parametrize("backend", ["vectorized", "reference"])
    def test_crossover_rebuild_matches_full(self, meshes, backend):
        """rebuild() under its own crossover test, random remap walks."""
        for graph in meshes:
            n = graph.num_vertices
            for p in (3, 5, 8):
                rng = np.random.default_rng(1000 + p)
                part = random_partition(n, p, rng)
                incs = [
                    IncrementalInspector(
                        graph, part, r, strategy="sort2", backend=backend
                    )
                    for r in range(p)
                ]
                for _ in range(4):
                    part = random_partition(n, p, rng)
                    for r in range(p):
                        got = incs[r].rebuild(part)
                        want = run_inspector(
                            graph, part, r, strategy="sort2", backend=backend
                        )
                        assert inspector_results_equal(got, want)

    @pytest.mark.parametrize("strategy", ["sort1", "sort2"])
    def test_forced_patch_matches_full(self, meshes, strategy):
        for graph in meshes:
            n = graph.num_vertices
            rng = np.random.default_rng(7)
            for p in (3, 6):
                for _ in range(10):
                    old = random_partition(n, p, rng)
                    new = shifted_partition(old, rng, mag=6)
                    for r in range(p):
                        d = diff_interval(old, new, r)
                        if d.n_kept == 0:
                            continue
                        inc = IncrementalInspector(
                            graph, old, r, strategy=strategy
                        )
                        got = inc.rebuild(new, force="patch")
                        want = run_inspector(graph, new, r, strategy=strategy)
                        assert inspector_results_equal(got, want)
                        assert inc.last_mode == "patched"
                        assert inc.num_patches == 1

    def test_chained_patches_match_full(self, meshes):
        """Successive patches reuse caches updated by earlier patches."""
        for graph in meshes:
            n = graph.num_vertices
            rng = np.random.default_rng(11)
            p = 4
            part = random_partition(n, p, rng)
            incs = [
                IncrementalInspector(graph, part, r, strategy="sort2")
                for r in range(p)
            ]
            for _ in range(6):
                nxt = shifted_partition(part, rng, mag=4)
                for r in range(p):
                    if diff_interval(part, nxt, r).n_kept == 0:
                        continue
                    got = incs[r].rebuild(nxt, force="patch")
                    want = run_inspector(graph, nxt, r, strategy="sort2")
                    assert inspector_results_equal(got, want)
                part = nxt

    def test_patched_sweep_values_bit_identical(self, meshes):
        graph = meshes[1]
        n = graph.num_vertices
        rng = np.random.default_rng(5)
        y0 = rng.uniform(0, 100, n)
        old = random_partition(n, 4, rng)
        new = shifted_partition(old, rng, mag=5)
        for r in range(4):
            if diff_interval(old, new, r).n_kept == 0:
                continue
            inc = IncrementalInspector(graph, old, r, strategy="sort2")
            got = inc.rebuild(new, force="patch")
            want = run_inspector(graph, new, r, strategy="sort2")
            lo, hi = new.interval(r)
            v_got = got.kernel_plan.sweep(
                y0[lo:hi], y0[got.schedule.ghost_globals]
            )
            v_want = want.kernel_plan.sweep(
                y0[lo:hi], y0[want.schedule.ghost_globals]
            )
            assert np.array_equal(v_got, v_want)  # bit identity, not allclose

    def test_noop_rebuild_is_a_patch(self, meshes):
        graph = meshes[0]
        part = random_partition(graph.num_vertices, 3, np.random.default_rng(2))
        inc = IncrementalInspector(graph, part, 1, strategy="sort2")
        got = inc.rebuild(part)
        want = run_inspector(graph, part, 1, strategy="sort2")
        assert inspector_results_equal(got, want)
        assert inc.last_mode == "patched"

    def test_force_full_takes_full_path(self, meshes):
        graph = meshes[0]
        part = random_partition(graph.num_vertices, 3, np.random.default_rng(2))
        inc = IncrementalInspector(graph, part, 0, strategy="sort2")
        inc.rebuild(part, force="full")
        assert inc.last_mode == "full"
        assert inc.num_full_rebuilds == 1
        assert inc.last_patch_cost == 0.0

    def test_forced_patch_across_disjoint_move_rejected(self, meshes):
        graph = meshes[0]
        n = graph.num_vertices
        owners = np.arange(2, dtype=np.intp)
        old = IntervalPartition(np.array([0, 10, n]), owners)
        new = IntervalPartition(np.array([0, n, n]), owners)
        inc = IncrementalInspector(graph, old, 1, strategy="sort2")
        with pytest.raises(ScheduleError, match="disjoint"):
            inc.rebuild(new, force="patch")

    def test_bad_force_value_rejected(self, meshes):
        graph = meshes[0]
        part = random_partition(graph.num_vertices, 2, np.random.default_rng(0))
        inc = IncrementalInspector(graph, part, 0, strategy="sort2")
        with pytest.raises(ScheduleError, match="force"):
            inc.rebuild(part, force="fast")

    def test_simple_strategy_rejected(self, meshes):
        graph = meshes[0]
        part = random_partition(graph.num_vertices, 2, np.random.default_rng(0))
        with pytest.raises(ScheduleError, match="simple"):
            IncrementalInspector(graph, part, 0, strategy="simple")


def make_msg(src, dest, tag, payload, seq=0):
    return Message(
        src, dest, tag, payload, payload_nbytes(payload), 0.0, 0.0, seq
    )


class TestMailboxBulk:
    def test_bulk_equals_single_receives(self):
        sources, tag = {0, 2, 3, 5}, 9
        single, bulk = Mailbox(1), Mailbox(1)
        for seq, src in enumerate([3, 0, 5, 2]):
            for box in (single, bulk):
                box.deposit(make_msg(src, 1, tag, f"m{src}", seq=seq))
        got = bulk.receive_bulk(sources, tag, timeout=1.0)
        want = {s: single.receive(s, tag, timeout=1.0) for s in sources}
        assert set(got) == sources
        for s in sources:
            assert got[s].payload == want[s].payload
            assert got[s].source == want[s].source

    def test_bulk_takes_fifo_head_per_channel(self):
        box = Mailbox(1)
        box.deposit(make_msg(0, 1, 4, "first", seq=1))
        box.deposit(make_msg(0, 1, 4, "second", seq=2))
        got = box.receive_bulk({0}, 4, timeout=1.0)
        assert got[0].payload == "first"
        assert box.receive(0, 4, timeout=1.0).payload == "second"

    def test_bulk_leaves_other_tags_buffered(self):
        box = Mailbox(1)
        box.deposit(make_msg(0, 1, 7, "other-tag"))
        box.deposit(make_msg(0, 1, 4, "wanted"))
        got = box.receive_bulk({0}, 4, timeout=1.0)
        assert got[0].payload == "wanted"
        assert box.receive(0, 7, timeout=1.0).payload == "other-tag"

    def test_unexpected_source_raises(self):
        box = Mailbox(1)
        box.deposit(make_msg(4, 1, 9, "intruder"))
        with pytest.raises(CommunicationError, match="unexpected"):
            box.receive_bulk({0, 2}, 9, timeout=0.2)

    def test_timeout_raises(self):
        box = Mailbox(1)
        with pytest.raises(CommunicationError, match="timed out"):
            box.receive_bulk({0}, 3, timeout=0.05)

    def test_wildcards_rejected(self):
        box = Mailbox(1)
        with pytest.raises(CommunicationError):
            box.receive_bulk({0}, ANY_TAG, timeout=0.1)
        with pytest.raises(CommunicationError):
            box.receive_bulk({ANY_SOURCE}, 3, timeout=0.1)


class TestSessionInspectorModes:
    @pytest.fixture(scope="class")
    def workload(self):
        g = paper_mesh(800, seed=21)
        y0 = np.random.default_rng(0).uniform(0, 100, g.num_vertices)
        return g, y0

    def test_incremental_values_bit_identical_to_full(self, workload):
        g, y0 = workload
        cl = adaptive_cluster(3, loaded_rank=0, competing_load=2.0)
        reps = {}
        for mode in ("full", "incremental"):
            reps[mode] = run_program(
                g, cl,
                ProgramConfig(
                    iterations=30,
                    initial_capabilities="equal",
                    load_balance=LoadBalanceConfig(check_interval=10),
                    inspector_mode=mode,
                ),
                y0=y0,
            )
        assert np.array_equal(
            reps["full"].values, reps["incremental"].values
        )  # bit identity across inspector modes
        oracle = run_sequential(g, y0, 30)
        np.testing.assert_allclose(reps["incremental"].values, oracle, atol=1e-9)

    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="inspector_mode"):
            ProgramConfig(inspector_mode="fast")

    def test_config_rejects_incremental_with_simple(self):
        with pytest.raises(ConfigurationError, match="sorting strategy"):
            ProgramConfig(inspector_mode="incremental", strategy="simple")
