"""Determinism of executor send/recv ordering (ISSUE 2 satellite).

``gather``/``scatter`` iterate schedule dictionaries — these tests pin three
properties, for both backends:

* sends are issued in ascending peer order regardless of dict insertion
  order (``sorted(...)`` is load-bearing, not incidental);
* received contributions are **applied** in ascending peer order, not
  message-arrival order — so ``scatter(op="add")`` accumulation is
  bit-deterministic even though floating-point addition does not commute
  across thread-scheduling-dependent arrival orders;
* repeated runs produce bit-identical buffers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import perturbed_grid_mesh
from repro.net.cluster import heterogeneous_cluster, uniform_cluster
from repro.net.message import Tags
from repro.net.spmd import run_spmd
from repro.partition.intervals import partition_list
from repro.runtime.backend import BACKENDS
from repro.runtime.executor import gather, scatter
from repro.runtime.schedule import CommSchedule
from repro.runtime.schedule_builders import build_schedule_sort2


@pytest.fixture(scope="module")
def workload():
    graph = perturbed_grid_mesh(12, 12, seed=9).graph
    part = partition_list(graph.num_vertices, [0.4, 0.25, 0.2, 0.15])
    scheds = [build_schedule_sort2(graph, part, r) for r in range(4)]
    y = np.random.default_rng(9).uniform(-1e8, 1e8, graph.num_vertices)
    return graph, part, scheds, y


def _reversed_dicts(sched: CommSchedule) -> CommSchedule:
    """The same schedule with reversed dict insertion order."""
    return CommSchedule(
        rank=sched.rank,
        partition=sched.partition,
        send_lists={k: sched.send_lists[k].copy()
                    for k in sorted(sched.send_lists, reverse=True)},
        recv_lists={k: sched.recv_lists[k].copy()
                    for k in sorted(sched.recv_lists, reverse=True)},
        ghost_globals=sched.ghost_globals.copy(),
    )


def _expected_scatter_add(part, scheds, y):
    """Serial oracle: contributions applied in ascending peer order."""
    expected = []
    for r, sched in enumerate(scheds):
        lo, hi = part.interval(r)
        local = y[lo:hi].copy()
        for s in sorted(sched.send_lists):
            if not sched.send_lists[s].size:
                continue
            pos = scheds[s].recv_lists[r]
            payload = y[scheds[s].ghost_globals[pos]]
            np.add.at(local, sched.send_lists[s], payload)
        expected.append(local)
    return expected


@pytest.mark.parametrize("backend", BACKENDS)
class TestOrderingDeterminism:
    def test_sends_issued_in_ascending_peer_order(self, workload, backend):
        _, part, scheds, y = workload

        def fn(ctx):
            sched = _reversed_dicts(scheds[ctx.rank])
            lo, hi = part.interval(ctx.rank)
            ghost = gather(ctx, sched, y[lo:hi], backend=backend)
            local = np.zeros(hi - lo)
            scatter(ctx, sched, ghost, local, op="add", backend=backend)
            return True

        res = run_spmd(uniform_cluster(4), fn, trace=True)
        for r in range(4):
            for tag in (Tags.EXECUTOR_GATHER, Tags.EXECUTOR_SCATTER):
                peers = [e.peer for e in res.trace.events(kind="send", rank=r)
                         if e.tag == tag]
                assert peers == sorted(peers), (r, tag, peers)
                assert len(peers) == len(set(peers))  # one message per peer

    def test_scatter_add_applies_in_ascending_peer_order(self, workload, backend):
        _, part, scheds, y = workload
        expected = _expected_scatter_add(part, scheds, y)

        def fn(ctx):
            sched = scheds[ctx.rank]
            lo, hi = part.interval(ctx.rank)
            local = y[lo:hi].copy()
            ghost = y[sched.ghost_globals]  # as filled by a correct gather
            scatter(ctx, sched, ghost, local, op="add", backend=backend)
            return local

        # Repeat: thread scheduling (hence arrival order) varies, results
        # must not.  Bitwise comparison against the ascending-order oracle.
        for _ in range(5):
            res = run_spmd(uniform_cluster(4), fn)
            for r in range(4):
                np.testing.assert_array_equal(res.values[r], expected[r])

    def test_insertion_order_cannot_change_results(self, workload, backend):
        _, part, scheds, y = workload

        def run(make_sched):
            def fn(ctx):
                sched = make_sched(scheds[ctx.rank])
                lo, hi = part.interval(ctx.rank)
                local = y[lo:hi].copy()
                ghost = gather(ctx, sched, local, backend=backend)
                scatter(ctx, sched, ghost, local, op="add", backend=backend)
                return ghost, local

            return run_spmd(uniform_cluster(4), fn)

        res_fwd = run(lambda s: s)
        res_rev = run(_reversed_dicts)
        for (ga, la), (gb, lb) in zip(res_fwd.values, res_rev.values):
            np.testing.assert_array_equal(ga, gb)
            np.testing.assert_array_equal(la, lb)


def test_scatter_add_deterministic_on_heterogeneous_cluster(workload):
    """Speed skew reorders arrivals; accumulation order must not follow."""
    _, part, scheds, y = workload
    expected = _expected_scatter_add(part, scheds, y)

    def fn(ctx):
        sched = scheds[ctx.rank]
        lo, hi = part.interval(ctx.rank)
        local = y[lo:hi].copy()
        ghost = y[sched.ghost_globals]
        scatter(ctx, sched, ghost, local, op="add")
        return local

    cluster = heterogeneous_cluster([1.0, 0.3, 0.9, 0.5])
    for _ in range(3):
        res = run_spmd(cluster, fn)
        for r in range(4):
            np.testing.assert_array_equal(res.values[r], expected[r])
