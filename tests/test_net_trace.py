"""Tests for the event trace log."""

from __future__ import annotations

import logging

import pytest

from repro.errors import ConfigurationError
from repro.net.cluster import uniform_cluster
from repro.net.message import Tags
from repro.net.spmd import run_spmd
from repro.net.trace import TraceEvent, TraceLog


class TestTraceLog:
    def test_disabled_records_nothing(self):
        log = TraceLog(enabled=False)
        log.record(TraceEvent("send", 0, 0.0, 1.0, nbytes=10))
        assert len(log) == 0

    def test_filtering(self):
        log = TraceLog()
        log.record(TraceEvent("send", 0, 0.0, 1.0, nbytes=10))
        log.record(TraceEvent("recv", 1, 0.0, 1.0, nbytes=10))
        log.record(TraceEvent("send", 1, 1.0, 2.0, nbytes=5))
        assert len(log.events(kind="send")) == 2
        assert len(log.events(rank=1)) == 2
        assert len(log.events(kind="send", rank=1)) == 1

    def test_message_count_and_bytes(self):
        log = TraceLog()
        log.record(TraceEvent("send", 0, 0.0, 1.0, nbytes=10))
        log.record(TraceEvent("multicast", 0, 1.0, 2.0, nbytes=20))
        log.record(TraceEvent("recv", 1, 0.0, 1.0, nbytes=10))
        assert log.message_count() == 2
        assert log.bytes_sent() == 30

    def test_time_in(self):
        log = TraceLog()
        log.record(TraceEvent("compute", 0, 0.0, 1.5))
        log.record(TraceEvent("compute", 0, 2.0, 3.0))
        log.record(TraceEvent("compute", 1, 0.0, 9.0))
        assert log.time_in("compute", 0) == 2.5

    def test_clear(self):
        log = TraceLog()
        log.record(TraceEvent("send", 0, 0.0, 1.0))
        log.clear()
        assert len(log) == 0

    def test_iteration(self):
        log = TraceLog()
        log.record(TraceEvent("send", 0, 0.0, 1.0))
        assert [e.kind for e in log] == ["send"]

    def test_seq_is_per_rank_program_order(self):
        log = TraceLog()
        log.record(TraceEvent("send", 0, 0.0, 1.0))
        log.record(TraceEvent("send", 1, 0.0, 1.0))
        log.record(TraceEvent("recv", 0, 1.0, 2.0))
        assert [e.seq for e in log.events(rank=0)] == [0, 1]
        assert [e.seq for e in log.events(rank=1)] == [0]

    def test_spans_filter(self):
        log = TraceLog()
        log.record(TraceEvent("send", 0, 0.0, 1.0))
        log.record(TraceEvent("epoch", 0, 0.0, 2.0, span_id=0))
        log.record(TraceEvent("executor", 0, 0.0, 1.0, span_id=1,
                              parent_id=0))
        assert [e.kind for e in log.spans()] == ["epoch", "executor"]
        assert [e.kind for e in log.spans("executor")] == ["executor"]

    def test_extend_preserves_shipped_seq(self):
        # A worker recorded locally; the parent merges the shipped events
        # and keeps recording on the same rank afterwards.
        worker = TraceLog()
        worker.record(TraceEvent("send", 0, 0.0, 1.0))
        worker.record(TraceEvent("recv", 0, 1.0, 2.0))
        parent = TraceLog()
        parent.extend(worker.events())
        parent.record(TraceEvent("barrier", 0, 2.0, 3.0))
        assert [e.seq for e in parent.events(rank=0)] == [0, 1, 2]

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            TraceLog(capacity=0)

    def test_ring_buffer_keeps_newest(self):
        log = TraceLog(capacity=2)
        for i in range(5):
            log.record(TraceEvent("send", 0, float(i), float(i) + 1.0))
        assert len(log) == 2
        assert [e.t_start for e in log.events()] == [3.0, 4.0]
        assert log.dropped_events == 3
        # Eviction never disturbs the per-rank program order.
        assert [e.seq for e in log.events()] == [3, 4]

    def test_ring_buffer_warns_once(self, caplog, monkeypatch):
        # configure_logging (run by any earlier CLI test) turns off
        # propagation on the "repro" tree; caplog captures at the root.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        log = TraceLog(capacity=1)
        with caplog.at_level(logging.WARNING, logger="repro.net.trace"):
            for i in range(4):
                log.record(TraceEvent("send", 0, float(i), float(i) + 1.0))
        warnings = [r for r in caplog.records if "trace buffer full" in r.message]
        assert len(warnings) == 1

    def test_clear_resets_drop_accounting(self):
        log = TraceLog(capacity=1)
        log.record(TraceEvent("send", 0, 0.0, 1.0))
        log.record(TraceEvent("send", 0, 1.0, 2.0))
        assert log.dropped_events == 1
        log.clear()
        assert log.dropped_events == 0
        log.record(TraceEvent("send", 0, 0.0, 1.0))
        assert log.events()[0].seq == 0  # seq counters restart too


class TestTraceIntegration:
    def test_spmd_trace_captures_traffic(self):
        def fn(ctx):
            if ctx.rank == 0:
                ctx.send(1, b"x" * 100, Tags.USER_BASE)
            else:
                ctx.recv(0, Tags.USER_BASE)
            ctx.barrier()
            ctx.compute(0.1)

        res = run_spmd(uniform_cluster(2), fn, trace=True)
        assert len(res.trace.events(kind="send")) == 1
        assert len(res.trace.events(kind="recv")) == 1
        assert len(res.trace.events(kind="barrier")) == 2
        assert len(res.trace.events(kind="compute")) == 2
        send = res.trace.events(kind="send")[0]
        assert send.peer == 1 and send.nbytes == 116

    def test_trace_disabled_by_default(self):
        res = run_spmd(uniform_cluster(2), lambda ctx: ctx.compute(0.1))
        assert len(res.trace) == 0
