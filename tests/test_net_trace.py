"""Tests for the event trace log."""

from __future__ import annotations

from repro.net.cluster import uniform_cluster
from repro.net.message import Tags
from repro.net.spmd import run_spmd
from repro.net.trace import TraceEvent, TraceLog


class TestTraceLog:
    def test_disabled_records_nothing(self):
        log = TraceLog(enabled=False)
        log.record(TraceEvent("send", 0, 0.0, 1.0, nbytes=10))
        assert len(log) == 0

    def test_filtering(self):
        log = TraceLog()
        log.record(TraceEvent("send", 0, 0.0, 1.0, nbytes=10))
        log.record(TraceEvent("recv", 1, 0.0, 1.0, nbytes=10))
        log.record(TraceEvent("send", 1, 1.0, 2.0, nbytes=5))
        assert len(log.events(kind="send")) == 2
        assert len(log.events(rank=1)) == 2
        assert len(log.events(kind="send", rank=1)) == 1

    def test_message_count_and_bytes(self):
        log = TraceLog()
        log.record(TraceEvent("send", 0, 0.0, 1.0, nbytes=10))
        log.record(TraceEvent("multicast", 0, 1.0, 2.0, nbytes=20))
        log.record(TraceEvent("recv", 1, 0.0, 1.0, nbytes=10))
        assert log.message_count() == 2
        assert log.bytes_sent() == 30

    def test_time_in(self):
        log = TraceLog()
        log.record(TraceEvent("compute", 0, 0.0, 1.5))
        log.record(TraceEvent("compute", 0, 2.0, 3.0))
        log.record(TraceEvent("compute", 1, 0.0, 9.0))
        assert log.time_in("compute", 0) == 2.5

    def test_clear(self):
        log = TraceLog()
        log.record(TraceEvent("send", 0, 0.0, 1.0))
        log.clear()
        assert len(log) == 0

    def test_iteration(self):
        log = TraceLog()
        log.record(TraceEvent("send", 0, 0.0, 1.0))
        assert [e.kind for e in log] == ["send"]


class TestTraceIntegration:
    def test_spmd_trace_captures_traffic(self):
        def fn(ctx):
            if ctx.rank == 0:
                ctx.send(1, b"x" * 100, Tags.USER_BASE)
            else:
                ctx.recv(0, Tags.USER_BASE)
            ctx.barrier()
            ctx.compute(0.1)

        res = run_spmd(uniform_cluster(2), fn, trace=True)
        assert len(res.trace.events(kind="send")) == 1
        assert len(res.trace.events(kind="recv")) == 1
        assert len(res.trace.events(kind="barrier")) == 2
        assert len(res.trace.events(kind="compute")) == 2
        send = res.trace.events(kind="send")[0]
        assert send.peer == 1 and send.nbytes == 116

    def test_trace_disabled_by_default(self):
        res = run_spmd(uniform_cluster(2), lambda ctx: ctx.compute(0.1))
        assert len(res.trace) == 0
