"""Tests for repro.utils: rng plumbing, validation, tables, timing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.tables import format_cell, format_table
from repro.utils.timing import Stopwatch, stopwatch, time_call
from repro.utils.validation import (
    check_fraction,
    check_permutation,
    check_positive,
    check_probability_vector,
)


class TestRng:
    def test_int_seed_reproducible(self):
        a = as_generator(42).uniform(size=8)
        b = as_generator(42).uniform(size=8)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        g = as_generator(np.random.SeedSequence(5))
        assert isinstance(g, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawn_count(self):
        gens = spawn_generators(7, 5)
        assert len(gens) == 5

    def test_spawn_independent_streams(self):
        g1, g2 = spawn_generators(7, 2)
        assert not np.allclose(g1.uniform(size=16), g2.uniform(size=16))

    def test_spawn_reproducible(self):
        a = [g.uniform() for g in spawn_generators(3, 4)]
        b = [g.uniform() for g in spawn_generators(3, 4)]
        assert a == b

    def test_spawn_from_generator(self):
        gens = spawn_generators(np.random.default_rng(1), 3)
        assert len(gens) == 3

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_spawn_zero_ok(self):
        assert spawn_generators(0, 0) == []


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 2.5) == 2.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0.0)

    def test_check_positive_nonstrict_accepts_zero(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_check_positive_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", float("nan"))

    def test_check_positive_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive("x", float("inf"))

    def test_check_fraction_bounds(self):
        assert check_fraction("f", 0.0) == 0.0
        assert check_fraction("f", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_fraction("f", 1.0001)
        with pytest.raises(ValueError):
            check_fraction("f", -0.1)

    def test_check_permutation_valid(self):
        out = check_permutation([2, 0, 1])
        assert out.dtype == np.intp
        np.testing.assert_array_equal(out, [2, 0, 1])

    def test_check_permutation_empty(self):
        assert check_permutation([]).size == 0

    def test_check_permutation_repeats(self):
        with pytest.raises(ValueError, match="repeated"):
            check_permutation([0, 0, 2])

    def test_check_permutation_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            check_permutation([0, 1, 3])

    def test_check_permutation_wrong_length(self):
        with pytest.raises(ValueError, match="length"):
            check_permutation([0, 1], n=3)

    def test_check_permutation_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            check_permutation(np.zeros((2, 2), dtype=int))

    @given(st.permutations(list(range(8))))
    def test_check_permutation_property(self, perm):
        np.testing.assert_array_equal(check_permutation(perm), perm)

    def test_probability_vector_valid(self):
        v = check_probability_vector("w", [1, 2, 3])
        assert v.dtype == np.float64

    def test_probability_vector_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_probability_vector("w", [1, -1])

    def test_probability_vector_rejects_zero_sum(self):
        with pytest.raises(ValueError, match="positive sum"):
            check_probability_vector("w", [0.0, 0.0])

    def test_probability_vector_rejects_empty(self):
        with pytest.raises(ValueError):
            check_probability_vector("w", [])

    def test_probability_vector_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_probability_vector("w", [1.0, float("nan")])


class TestTables:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456]], float_fmt="{:.2f}")
        assert "0.12" in out

    def test_bool_cells(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_alignment_width(self):
        out = format_table(["col"], [["longvalue"]])
        header, sep, row = out.splitlines()
        assert len(header) == len(row)


class TestTiming:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        with sw:
            pass
        assert sw.count == 2
        assert sw.total >= 0.0
        assert sw.mean == sw.total / 2

    def test_stopwatch_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.count == 0 and sw.total == 0.0

    def test_stopwatch_mean_empty(self):
        assert Stopwatch().mean == 0.0

    def test_stopwatch_contextmanager(self):
        with stopwatch() as sw:
            x = sum(range(100))
        assert sw.total > 0.0
        assert x == 4950

    def test_time_call(self):
        elapsed, result = time_call(lambda: 7, repeats=3)
        assert result == 7
        assert elapsed >= 0.0

    def test_time_call_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: 1, repeats=0)
