"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_graph, paper_mesh, perturbed_grid_mesh
from repro.net.cluster import heterogeneous_cluster, uniform_cluster


@pytest.fixture(scope="session")
def small_grid() -> CSRGraph:
    """An 8x8 grid graph (64 vertices, 112 edges) with coordinates."""
    return grid_graph(8, 8)


@pytest.fixture(scope="session")
def small_mesh_graph() -> CSRGraph:
    """An unstructured Delaunay mesh graph, ~400 vertices."""
    return perturbed_grid_mesh(20, 20, seed=42).graph


@pytest.fixture(scope="session")
def tiny_paper_mesh() -> CSRGraph:
    """A reduced paper_mesh (500 vertices at Fig. 9's edge ratio)."""
    return paper_mesh(500, seed=7)


@pytest.fixture
def cluster3():
    """Three equal dedicated workstations, deterministic network."""
    return uniform_cluster(3)


@pytest.fixture
def hetero4():
    """Four workstations with distinct speeds, deterministic network."""
    return heterogeneous_cluster([1.0, 0.8, 0.6, 0.4])


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
