"""Tests for 3-D meshes and the runtime over 3-D workloads.

The paper's graph model covers "two- or three-dimensional coordinates";
these tests exercise the 3-D path end to end: tetrahedral meshes, the
coordinate-based orderings, and a full program run against the oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import grid_mesh_3d, random_geometric_graph
from repro.graph.metrics import mean_edge_span
from repro.graph.ops import connected_components
from repro.net.cluster import sun4_cluster, uniform_cluster
from repro.partition.inertial import InertialOrdering
from repro.partition.ordering import RandomOrdering
from repro.partition.rcb import RCBOrdering
from repro.partition.sfc import HilbertOrdering, MortonOrdering
from repro.runtime.kernels import run_sequential
from repro.runtime.program import ProgramConfig, run_program


@pytest.fixture(scope="module")
def mesh3d():
    return grid_mesh_3d(6, 6, 6, jitter=0.25, seed=3)


class TestGridMesh3D:
    def test_shapes(self, mesh3d):
        assert mesh3d.dim == 3
        assert mesh3d.num_points == 216
        assert mesh3d.num_cells == 6 * 5**3
        assert mesh3d.cells.shape[1] == 4  # tetrahedra

    def test_connected(self, mesh3d):
        assert connected_components(mesh3d.graph)[0] == 1

    def test_degree_profile_sane(self):
        m = grid_mesh_3d(4, 4, 4)
        degs = m.graph.degrees
        # Tetrahedralized grid: interior vertices see their 6 axis
        # neighbors plus face/main diagonals.
        assert degs.min() >= 3
        assert degs.max() <= 26

    def test_structured_coordinates(self):
        m = grid_mesh_3d(3, 3, 3)
        np.testing.assert_array_equal(m.points[0], [0.0, 0.0, 0.0])
        np.testing.assert_array_equal(m.points[-1], [2.0, 2.0, 2.0])

    def test_validation(self):
        with pytest.raises(GraphError):
            grid_mesh_3d(1, 3, 3)
        with pytest.raises(GraphError):
            grid_mesh_3d(3, 3, 3, jitter=0.6)

    def test_jitter_reproducible(self):
        a = grid_mesh_3d(4, 4, 4, jitter=0.2, seed=9)
        b = grid_mesh_3d(4, 4, 4, jitter=0.2, seed=9)
        np.testing.assert_array_equal(a.points, b.points)


class TestOrderings3D:
    @pytest.mark.parametrize(
        "method",
        [RCBOrdering(), RCBOrdering(alternate_axes=True), InertialOrdering(),
         MortonOrdering(), HilbertOrdering()],
        ids=lambda m: m.name,
    )
    def test_produces_permutation(self, mesh3d, method):
        perm = method(mesh3d.graph)
        n = mesh3d.num_points
        assert np.array_equal(np.sort(perm), np.arange(n))

    @pytest.mark.parametrize(
        "method",
        [RCBOrdering(), InertialOrdering(), MortonOrdering()],
        ids=lambda m: m.name,
    )
    def test_locality_beats_random(self, mesh3d, method):
        g = mesh3d.graph
        span = mean_edge_span(g, method(g))
        rand = mean_edge_span(g, RandomOrdering(seed=0)(g))
        assert span < rand / 2.0

    def test_random_geometric_3d_ordering(self):
        g = random_geometric_graph(400, seed=5, dim=3)
        perm = RCBOrdering()(g)
        assert np.array_equal(np.sort(perm), np.arange(g.num_vertices))


class TestProgram3D:
    def test_matches_oracle(self, mesh3d):
        g = mesh3d.graph
        y0 = np.random.default_rng(7).uniform(0, 100, g.num_vertices)
        oracle = run_sequential(g, y0, 10)
        rep = run_program(
            g, sun4_cluster(3), ProgramConfig(iterations=10), y0=y0
        )
        np.testing.assert_allclose(rep.values, oracle, atol=1e-9)

    def test_all_strategies(self, mesh3d):
        g = mesh3d.graph
        y0 = np.random.default_rng(8).uniform(0, 100, g.num_vertices)
        oracle = run_sequential(g, y0, 6)
        for strategy in ("sort1", "sort2", "simple"):
            rep = run_program(
                g, uniform_cluster(3),
                ProgramConfig(iterations=6, strategy=strategy), y0=y0,
            )
            np.testing.assert_allclose(rep.values, oracle, atol=1e-9)
