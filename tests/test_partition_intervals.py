"""Tests for proportional interval partitioning and dereferencing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.partition.intervals import (
    IntervalPartition,
    partition_list,
    proportional_sizes,
)


class TestProportionalSizes:
    def test_exact_division(self):
        np.testing.assert_array_equal(
            proportional_sizes(100, [0.27, 0.18, 0.34, 0.07, 0.14]),
            [27, 18, 34, 7, 14],
        )

    def test_rounding_conserves_total(self):
        sizes = proportional_sizes(10, [1, 1, 1])
        assert sizes.sum() == 10

    def test_within_one_of_exact(self):
        caps = np.array([0.5, 0.3, 0.2])
        sizes = proportional_sizes(7, caps)
        exact = 7 * caps
        assert np.all(np.abs(sizes - exact) < 1.0)

    def test_zero_elements(self):
        np.testing.assert_array_equal(proportional_sizes(0, [1, 2]), [0, 0])

    def test_zero_capability_gets_zero(self):
        sizes = proportional_sizes(10, [1.0, 0.0])
        np.testing.assert_array_equal(sizes, [10, 0])

    def test_rejects_negative_n(self):
        with pytest.raises(PartitionError):
            proportional_sizes(-1, [1.0])

    def test_deterministic_tie_break(self):
        a = proportional_sizes(5, [1, 1])
        b = proportional_sizes(5, [1, 1])
        np.testing.assert_array_equal(a, b)
        assert a[0] == 3  # lower index wins the tie

    @given(
        n=st.integers(0, 10_000),
        caps=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=12),
    )
    @settings(max_examples=120, deadline=None)
    def test_invariants(self, n, caps):
        sizes = proportional_sizes(n, caps)
        assert sizes.sum() == n
        assert np.all(sizes >= 0)
        caps_arr = np.asarray(caps)
        exact = n * caps_arr / caps_arr.sum()
        assert np.all(np.abs(sizes - exact) <= 1.0 + 1e-9)


class TestIntervalPartition:
    def test_identity_arrangement(self):
        part = partition_list(10, [0.5, 0.5])
        assert part.interval(0) == (0, 5)
        assert part.interval(1) == (5, 10)
        assert part.num_elements == 10
        assert part.num_processors == 2

    def test_arrangement_reorders_blocks(self):
        part = partition_list(10, [0.8, 0.2], arrangement=[1, 0])
        assert part.interval(1) == (0, 2)  # P1's block placed first
        assert part.interval(0) == (2, 10)

    def test_sizes_indexed_by_rank(self):
        part = partition_list(10, [0.8, 0.2], arrangement=[1, 0])
        np.testing.assert_array_equal(part.sizes(), [8, 2])

    def test_block_of(self):
        part = partition_list(10, [0.5, 0.5], arrangement=[1, 0])
        assert part.block_of(1) == 0
        assert part.block_of(0) == 1
        with pytest.raises(PartitionError):
            part.block_of(5)

    def test_owner_of_scalar_and_array(self):
        part = partition_list(10, [0.5, 0.5])
        assert part.owner_of(3) == 0
        assert part.owner_of(5) == 1
        np.testing.assert_array_equal(
            part.owner_of(np.array([0, 4, 5, 9])), [0, 0, 1, 1]
        )

    def test_owner_of_out_of_range(self):
        part = partition_list(10, [1.0])
        with pytest.raises(PartitionError):
            part.owner_of(10)
        with pytest.raises(PartitionError):
            part.owner_of(-1)

    def test_local_index(self):
        part = partition_list(10, [0.5, 0.5])
        assert part.local_index(7) == 2
        np.testing.assert_array_equal(
            part.local_index(np.array([0, 5, 9])), [0, 0, 4]
        )

    def test_dereference_pairs(self):
        part = partition_list(100, [0.27, 0.18, 0.34, 0.07, 0.14])
        owner, local = part.dereference(np.array([0, 26, 27, 99]))
        np.testing.assert_array_equal(owner, [0, 0, 1, 4])
        np.testing.assert_array_equal(local, [0, 26, 0, 13])

    def test_to_labels(self):
        part = partition_list(6, [1, 2], arrangement=[1, 0])
        np.testing.assert_array_equal(part.to_labels(), [1, 1, 1, 1, 0, 0])

    def test_first_last_inclusive(self):
        part = partition_list(10, [0.5, 0.5])
        assert part.first_last() == [(0, 4), (5, 9)]

    def test_empty_block_handled(self):
        part = partition_list(3, [1.0, 0.0, 1.0])
        sizes = part.sizes()
        assert sizes.sum() == 3
        assert sizes[1] == 0
        lo, hi = part.interval(1)
        assert lo == hi
        # Every element still resolves to a non-empty owner.
        owners = part.owner_of(np.arange(3))
        assert 1 not in owners.tolist()

    def test_validation_bounds_start(self):
        with pytest.raises(PartitionError):
            IntervalPartition(np.array([1, 5]), np.array([0]))

    def test_validation_bounds_monotone(self):
        with pytest.raises(PartitionError):
            IntervalPartition(np.array([0, 5, 3]), np.array([0, 1]))

    def test_validation_owner_permutation(self):
        with pytest.raises(ValueError):
            IntervalPartition(np.array([0, 5, 10]), np.array([0, 0]))

    def test_validation_length_mismatch(self):
        with pytest.raises(PartitionError):
            IntervalPartition(np.array([0, 10]), np.array([0, 1]))

    def test_capability_proportional_to_speed(self):
        part = partition_list(100, [2.0, 1.0, 1.0])
        np.testing.assert_array_equal(part.sizes(), [50, 25, 25])

    @given(
        n=st.integers(1, 2000),
        caps=st.lists(st.floats(0.05, 5.0), min_size=1, max_size=8),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_dereference_consistency(self, n, caps, data):
        p = len(caps)
        arrangement = np.array(data.draw(st.permutations(list(range(p)))))
        part = partition_list(n, caps, arrangement)
        # every global index belongs to exactly the interval of its owner
        gi = np.arange(n)
        owner, local = part.dereference(gi)
        for r in range(p):
            lo, hi = part.interval(r)
            mine = gi[owner == r]
            assert np.all((mine >= lo) & (mine < hi))
            np.testing.assert_array_equal(local[owner == r], mine - lo)
        # labels round-trip
        np.testing.assert_array_equal(part.to_labels(), owner)
