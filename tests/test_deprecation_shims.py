"""The PR-3 deprecation shims: exactly one warning, faithful aliases,
and zero internal callers (ISSUE 4 satellite).

``pytest.ini`` additionally runs the whole suite with
``error::DeprecationWarning:repro`` so a shim call sneaking back into the
library fails loudly; the source scan below catches imports that would
only warn at call time.
"""

from __future__ import annotations

import re
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.net.cluster import uniform_cluster
from repro.net.network import PointToPointNetwork
from repro.net.spmd import run_spmd
from repro.partition.intervals import partition_list
from repro.runtime import adaptive

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

SHIM_IMPORT = re.compile(
    r"from\s+repro\.runtime\.(controller|distributed_lb|redistribution)\s+import"
    r"|import\s+repro\.runtime\.(controller|distributed_lb|redistribution)\b"
)

SHIM_MODULES = ("controller", "distributed_lb", "redistribution")


def _collect(callable_, *args, **kwargs):
    """Run *callable_* capturing every warning; return (result, warnings)."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = callable_(*args, **kwargs)
    return result, [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestExactlyOneWarning:
    def test_controller_check_warns_once_per_call(self):
        from repro.runtime.controller import controller_check

        part = partition_list(60, np.ones(2))
        cfg = adaptive.LoadBalanceConfig()

        def fn(ctx):
            _, warned = _collect(controller_check, ctx, part, 1e-4, 10, cfg)
            return len(warned)

        counts = run_spmd(uniform_cluster(2), fn).values
        assert counts == [1, 1]

    def test_distributed_check_warns_once_per_call(self):
        from repro.runtime.distributed_lb import distributed_check

        part = partition_list(60, np.ones(2))
        cfg = adaptive.LoadBalanceConfig(style="distributed")

        def fn(ctx):
            _, warned = _collect(distributed_check, ctx, part, 1e-4, 10, cfg)
            return len(warned)

        assert run_spmd(uniform_cluster(2), fn).values == [1, 1]

    def test_redistribute_warns_once_per_call(self):
        from repro.runtime.redistribution import redistribute

        old = partition_list(20, [1, 1])
        new = partition_list(20, [3, 1])
        base = np.arange(20, dtype=np.float64)

        def fn(ctx):
            lo, hi = old.interval(ctx.rank)
            out, warned = _collect(
                redistribute, ctx, old, new, base[lo:hi].copy()
            )
            nlo, nhi = new.interval(ctx.rank)
            np.testing.assert_array_equal(out, base[nlo:nhi])
            return len(warned)

        assert run_spmd(uniform_cluster(2), fn).values == [1, 1]

    def test_estimate_remap_cost_warns_exactly_once_and_twice(self):
        from repro.runtime.redistribution import estimate_remap_cost

        old = partition_list(100, [1, 1])
        new = partition_list(100, [3, 1])
        net = PointToPointNetwork()
        value, warned = _collect(estimate_remap_cost, net, old, new, 8)
        assert len(warned) == 1
        assert "moved to" in str(warned[0].message)
        assert value == adaptive.estimate_remap_cost(net, old, new, 8)
        # Per call, not once per process: a second call warns again.
        _, warned2 = _collect(estimate_remap_cost, net, old, new, 8)
        assert len(warned2) == 1

    def test_importing_shim_modules_is_silent(self):
        import importlib

        for name in SHIM_MODULES:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                importlib.import_module(f"repro.runtime.{name}")


class TestAliasing:
    def test_dataclasses_are_the_new_objects(self):
        from repro.runtime import controller

        assert controller.LoadBalanceConfig is adaptive.LoadBalanceConfig
        assert controller.Decision is adaptive.Decision
        assert controller.decide is adaptive.decide
        assert controller._decide is adaptive.decide

    def test_shim_entry_points_delegate(self):
        # The shims must be thin warn-and-delegate wrappers, not stale
        # copies of the moved logic.
        import inspect

        from repro.runtime import controller, distributed_lb, redistribution

        for mod, name in (
            (controller, "controller_check"),
            (distributed_lb, "distributed_check"),
            (redistribution, "redistribute"),
            (redistribution, "estimate_remap_cost"),
        ):
            src = inspect.getsource(getattr(mod, name))
            assert "warnings.warn" in src and "DeprecationWarning" in src


class TestNoInternalCallers:
    def test_library_never_imports_the_shims(self):
        """Internal code must import from repro.runtime.adaptive; the shims
        exist only for external call sites."""
        offenders = []
        for path in SRC.rglob("*.py"):
            if path.name in (
                "controller.py", "distributed_lb.py", "redistribution.py"
            ) and path.parent.name == "runtime":
                continue  # the shims themselves
            if SHIM_IMPORT.search(path.read_text(encoding="utf-8")):
                offenders.append(str(path.relative_to(SRC)))
        assert offenders == []

    def test_suite_escalates_repro_deprecation_warnings(self):
        """pytest.ini carries the error::DeprecationWarning:repro filter, so
        a shim call from library code fails the whole suite."""
        ini = (SRC.parent.parent / "pytest.ini").read_text(encoding="utf-8")
        assert "error::DeprecationWarning:repro" in ini
