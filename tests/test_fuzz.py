"""Tests for repro.fuzz: generator, oracle, shrinker, and corpus replay.

The committed corpus in ``tests/fuzz_corpus/`` always runs (it is small,
deterministic, and each entry pins an edge case by name).  The
open-ended randomized sweep is behind the ``fuzz`` marker and deselected
by default (see pytest.ini).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.fuzz import (
    INVARIANTS,
    LoadSpec,
    Scenario,
    check_invariant_names,
    generate_scenarios,
    run_scenario,
    shrink_scenario,
)

CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


# ----------------------------------------------------------------------
# scenario model


class TestScenario:
    def test_json_round_trip(self):
        s = Scenario(
            seed=7, vertices=160, workstations=3, iterations=8,
            membership="standby:2, join:2@0.01, fail:1@0.02",
            checkpoint="interval:2:r2",
            loads=(LoadSpec(rank=0, steps=((0.0, 0.0), (0.01, 1.5))),),
            expect="any", name="rt",
        )
        assert Scenario.from_json(s.to_json()) == s

    def test_rejects_unknown_field(self):
        data = Scenario(
            seed=1, vertices=64, workstations=2, iterations=2
        ).to_dict()
        data["surprise"] = True
        with pytest.raises(ConfigurationError, match="unknown field"):
            Scenario.from_dict(data)

    def test_rejects_unsupported_schema_version(self):
        data = Scenario(
            seed=1, vertices=64, workstations=2, iterations=2
        ).to_dict()
        data["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="schema_version"):
            Scenario.from_dict(data)

    def test_rejects_fail_without_checkpoint(self):
        with pytest.raises(ConfigurationError, match="checkpoint"):
            Scenario(seed=1, vertices=64, workstations=3, iterations=4,
                     membership="fail:1@0.01")

    def test_rejects_invalid_membership_dsl(self):
        with pytest.raises(ConfigurationError, match="membership DSL"):
            Scenario(seed=1, vertices=64, workstations=2, iterations=4,
                     membership="explode:0@1")

    def test_rejects_load_rank_out_of_range(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            Scenario(seed=1, vertices=64, workstations=2, iterations=4,
                     loads=(LoadSpec(rank=5, steps=((0.0, 1.0),)),))

    def test_rejects_bad_expectation(self):
        with pytest.raises(ConfigurationError, match="expectation"):
            Scenario(seed=1, vertices=64, workstations=2, iterations=4,
                     expect="hopeful")

    def test_baseline_strips_adversity(self):
        s = Scenario(seed=3, vertices=96, workstations=3, iterations=5,
                     membership="leave:1@0.01", checkpoint="interval:2",
                     loads=(LoadSpec(rank=0, steps=((0.0, 1.0),)),))
        b = s.baseline()
        assert b.membership is None
        assert b.checkpoint is None
        assert b.loads == ()
        assert (b.seed, b.vertices, b.iterations) == (3, 96, 5)

    def test_reproducer_command_is_replayable(self):
        s = Scenario(seed=2, vertices=64, workstations=2, iterations=3)
        cmd = s.reproducer_command()
        assert cmd.startswith("python -m repro fuzz run --scenario '")
        payload = cmd.split("--scenario '", 1)[1].rstrip("'")
        assert Scenario.from_json(payload) == s


# ----------------------------------------------------------------------
# generator determinism


class TestGenerator:
    def test_same_seed_same_scenarios(self):
        a = [s.to_json() for s in generate_scenarios(123, 6)]
        b = [s.to_json() for s in generate_scenarios(123, 6)]
        assert a == b

    def test_budget_growth_is_a_prefix_extension(self):
        small = [s.to_json() for s in generate_scenarios(9, 3)]
        large = [s.to_json() for s in generate_scenarios(9, 8)]
        assert large[:3] == small

    def test_generated_scenarios_are_valid_and_diverse(self):
        scens = generate_scenarios(0, 12)
        # Validity is enforced by the constructor; diversity spot-checks.
        assert len({s.workstations for s in scens}) > 1
        assert len({s.vertices for s in scens}) > 1
        assert any(s.membership for s in scens)
        assert any(s.checkpoint for s in scens)

    def test_fail_events_always_come_with_a_checkpoint(self):
        for s in generate_scenarios(5, 20):
            trace = s.membership_trace()
            if trace is not None and trace.has_failures:
                assert s.checkpoint is not None

    def test_rejects_negative_seed(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            generate_scenarios(-4, 2)

    def test_rejects_zero_budget(self):
        with pytest.raises(ConfigurationError, match="budget"):
            generate_scenarios(0, 0)


# ----------------------------------------------------------------------
# oracle


class TestOracle:
    def test_invariant_name_validation(self):
        assert check_invariant_names([]) == INVARIANTS
        assert check_invariant_names(["no-desync"]) == ("no-desync",)
        with pytest.raises(ConfigurationError, match="known invariants"):
            check_invariant_names(["no-desink"])

    def test_quiet_scenario_recovers(self):
        rep = run_scenario(
            Scenario(seed=1, vertices=96, workstations=2, iterations=4)
        )
        assert rep.outcome == "recovered"
        assert rep.ok
        assert rep.checked == INVARIANTS
        assert rep.makespan is not None and rep.makespan > 0

    def test_expectation_mismatch_is_a_violation(self):
        # A correlated k=1 ring-edge double failure marked "recovered"
        # must be reported, and the diagnosis carried along.
        s = Scenario(seed=5, vertices=96, workstations=3, iterations=6,
                     membership="fail:1@0.005, fail:2@0.005",
                     checkpoint="interval:2", expect="recovered")
        rep = run_scenario(s, invariants=["recoverable"])
        assert rep.outcome == "diagnosed"
        assert not rep.ok
        assert any("expects a recovery" in v for v in rep.violations)
        assert "replica" in rep.diagnosis

    def test_diagnosed_expectation_accepts_resilience_error(self):
        s = Scenario(seed=5, vertices=96, workstations=3, iterations=6,
                     membership="fail:1@0.005, fail:2@0.005",
                     checkpoint="interval:2", expect="diagnosed")
        rep = run_scenario(s, invariants=["recoverable"])
        assert rep.ok

    def test_selected_invariants_limit_the_work(self):
        s = Scenario(seed=2, vertices=96, workstations=2, iterations=3)
        rep = run_scenario(s, invariants=["no-desync"])
        assert rep.checked == ("no-desync",)
        assert rep.ok


# ----------------------------------------------------------------------
# shrinker


class TestShrinker:
    def _failing(self) -> Scenario:
        return Scenario(seed=5, vertices=320, workstations=4, iterations=12,
                        membership="fail:1@0.005, fail:2@0.005",
                        checkpoint="interval:2", expect="recovered",
                        name="shrink-me")

    def test_shrinks_and_still_fails(self):
        result = shrink_scenario(
            self._failing(), invariants=["recoverable"], max_attempts=60
        )
        assert not result.report.ok
        assert result.reductions > 0
        small = result.scenario
        assert small.vertices < 320
        assert small.iterations < 12
        # The reproducer replays to the same failure.
        replay = run_scenario(small, invariants=["recoverable"])
        assert not replay.ok

    def test_reproducer_command_round_trips(self):
        result = shrink_scenario(
            self._failing(), invariants=["recoverable"], max_attempts=40
        )
        payload = result.command.split("--scenario '", 1)[1].rstrip("'")
        assert Scenario.from_json(payload) == result.scenario

    def test_refuses_a_passing_scenario(self):
        s = Scenario(seed=1, vertices=96, workstations=2, iterations=3)
        with pytest.raises(ConfigurationError, match="nothing to shrink"):
            shrink_scenario(s, invariants=["no-desync"])

    def test_rejects_zero_attempt_budget(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            shrink_scenario(self._failing(), max_attempts=0)


# ----------------------------------------------------------------------
# corpus replay (always on; each entry pins a named edge case)


def test_corpus_exists_and_is_big_enough():
    assert len(CORPUS) >= 20, (
        f"tests/fuzz_corpus/ holds {len(CORPUS)} scenarios; the corpus "
        f"contract is >= 20"
    )
    names = {p.stem for p in CORPUS}
    for required in (
        "shrink-to-one-rank",
        "join-before-first-epoch",
        "failure-during-remap-window",
        "ring-edge-double-failure-k1",
        "ring-edge-double-failure-k2",
    ):
        assert required in names, f"corpus is missing {required}"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_scenario_passes_oracle(path):
    scenario = Scenario.from_json(path.read_text(encoding="utf-8"))
    report = run_scenario(scenario)
    assert report.ok, f"{path.stem}: {report.violations}"
    # The file's expectation must be meaningful, not a blanket "any",
    # for the handcrafted entries that pin a specific outcome.
    if scenario.expect != "any":
        assert report.outcome == scenario.expect


def test_corpus_files_are_normalized():
    # Each file is the canonical serialization of its own parse: corpus
    # diffs stay reviewable and shrunk replacements stay comparable.
    for path in CORPUS:
        text = path.read_text(encoding="utf-8")
        scenario = Scenario.from_json(text)
        assert json.loads(text) == scenario.to_dict(), path.stem


# ----------------------------------------------------------------------
# the open-ended randomized sweep (opt-in: pytest -m fuzz)


@pytest.mark.fuzz
@pytest.mark.parametrize("master_seed", [0, 1, 2, 3])
def test_randomized_sweep(master_seed):
    for scenario in generate_scenarios(master_seed, 25):
        report = run_scenario(scenario)
        assert report.ok, (
            f"{scenario.name}: {report.violations}\n"
            f"reproduce: {scenario.reproducer_command()}"
        )


@pytest.mark.fuzz
def test_randomized_sweep_is_replayable():
    first = [run_scenario(s).outcome for s in generate_scenarios(11, 10)]
    second = [run_scenario(s).outcome for s in generate_scenarios(11, 10)]
    assert first == second
