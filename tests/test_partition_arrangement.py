"""Tests for arrangements, MOVE, overlap accounting, and MCR (Figs. 5-7)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.partition.arrangement import (
    RedistributionCostModel,
    brute_force_arrangement,
    message_count,
    minimize_cost_redistribution,
    move,
    overlap_elements,
    redistribution_gain,
    transfer_matrix,
)
from repro.partition.intervals import partition_list

# The paper's Sec. 3.4 example.
OLD_CAP = [0.27, 0.18, 0.34, 0.07, 0.14]
NEW_CAP = [0.10, 0.13, 0.29, 0.24, 0.24]


class TestMove:
    def test_paper_example(self):
        np.testing.assert_array_equal(
            move([1, 3, 5, 4, 6], 5, 0), [5, 1, 3, 4, 6]
        )

    def test_move_to_end(self):
        np.testing.assert_array_equal(move([0, 1, 2], 0, 2), [1, 2, 0])

    def test_move_in_place(self):
        np.testing.assert_array_equal(move([0, 1, 2], 1, 1), [0, 1, 2])

    def test_move_right_to_left(self):
        np.testing.assert_array_equal(move([0, 1, 2, 3], 3, 1), [0, 3, 1, 2])

    def test_missing_element(self):
        with pytest.raises(PartitionError):
            move([0, 1, 2], 9, 0)

    def test_bad_location(self):
        with pytest.raises(PartitionError):
            move([0, 1, 2], 1, 3)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_move_is_permutation(self, data):
        n = data.draw(st.integers(1, 8))
        arr = data.draw(st.permutations(list(range(n))))
        c = data.draw(st.sampled_from(list(arr)))
        loc = data.draw(st.integers(0, n - 1))
        out = move(arr, c, loc)
        assert sorted(out.tolist()) == list(range(n))
        assert out[loc] == c


class TestOverlapAndTransfers:
    def test_identity_partitions_full_overlap(self):
        part = partition_list(100, OLD_CAP)
        assert overlap_elements(part, part) == 100
        assert message_count(part, part) == 0
        assert transfer_matrix(part, part) == []

    def test_paper_identity_numbers(self):
        old = partition_list(100, OLD_CAP)
        new = partition_list(100, NEW_CAP)
        # Paper reports 29 overlap / 5 messages; exact proportional
        # rounding gives 31 / 6 (same shape; see docs/benchmarks.md).
        assert overlap_elements(old, new) == 31
        assert message_count(old, new) == 6

    def test_paper_good_arrangement_numbers(self):
        old = partition_list(100, OLD_CAP)
        new = partition_list(100, NEW_CAP, [0, 3, 1, 2, 4])
        # Paper: 65 overlap / 3 messages; rounding gives 64 / 5.
        assert overlap_elements(old, new) == 64
        assert message_count(old, new) == 5

    def test_transfers_partition_the_moved_elements(self):
        old = partition_list(100, OLD_CAP)
        new = partition_list(100, NEW_CAP)
        transfers = transfer_matrix(old, new)
        moved = sum(t.count for t in transfers)
        assert moved == 100 - overlap_elements(old, new)
        # Slabs are disjoint and ordered.
        for a, b in zip(transfers, transfers[1:]):
            assert a.hi <= b.lo

    def test_transfers_source_dest_correct(self):
        old = partition_list(10, [0.5, 0.5])
        new = partition_list(10, [0.2, 0.8])
        (t,) = transfer_matrix(old, new)
        assert (t.source, t.dest, t.lo, t.hi) == (0, 1, 2, 5)

    def test_mismatched_sizes_rejected(self):
        a = partition_list(10, [1.0, 1.0])
        b = partition_list(12, [1.0, 1.0])
        with pytest.raises(PartitionError):
            overlap_elements(a, b)

    def test_mismatched_processor_counts_rejected(self):
        a = partition_list(10, [1.0, 1.0])
        b = partition_list(10, [1.0, 1.0, 1.0])
        with pytest.raises(PartitionError):
            overlap_elements(a, b)

    def test_gain_tradeoff(self):
        old = partition_list(100, OLD_CAP)
        new = partition_list(100, NEW_CAP)
        g_free = redistribution_gain(old, new, RedistributionCostModel(1.0, 0.0))
        g_priced = redistribution_gain(old, new, RedistributionCostModel(1.0, 10.0))
        assert g_free == 31
        assert g_priced == 31 - 60

    def test_cost_model_validation(self):
        with pytest.raises(PartitionError):
            RedistributionCostModel(element_weight=-1.0)

    def test_cost_model_from_network(self):
        from repro.net.network import PointToPointNetwork

        net = PointToPointNetwork(latency=1e-3, bandwidth=1e6,
                                  per_message_overhead=5e-4)
        cm = RedistributionCostModel.from_network(net, 8)
        assert cm.element_weight == pytest.approx(8e-6)
        assert cm.message_weight == pytest.approx(1.5e-3)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_overlap_symmetry_and_bounds(self, data):
        n = data.draw(st.integers(1, 500))
        p = data.draw(st.integers(1, 6))
        caps_a = data.draw(st.lists(st.floats(0.05, 3.0), min_size=p, max_size=p))
        caps_b = data.draw(st.lists(st.floats(0.05, 3.0), min_size=p, max_size=p))
        a = partition_list(n, caps_a)
        b = partition_list(n, caps_b)
        ov = overlap_elements(a, b)
        assert 0 <= ov <= n
        assert ov == overlap_elements(b, a)
        moved = sum(t.count for t in transfer_matrix(a, b))
        assert moved == n - ov


class TestMCR:
    def test_recovers_paper_arrangement(self):
        arr = minimize_cost_redistribution(np.arange(5), OLD_CAP, NEW_CAP, 100)
        np.testing.assert_array_equal(arr, [0, 3, 1, 2, 4])

    def test_result_is_permutation(self):
        arr = minimize_cost_redistribution(np.arange(5), OLD_CAP, NEW_CAP, 100)
        assert sorted(arr.tolist()) == list(range(5))

    def test_never_worse_than_identity(self):
        rng = np.random.default_rng(7)
        cm = RedistributionCostModel(message_weight=0.0)
        for _ in range(20):
            p = int(rng.integers(2, 7))
            oc = rng.dirichlet(np.ones(p)) + 0.02
            nc = rng.dirichlet(np.ones(p)) + 0.02
            old = partition_list(400, oc)
            arr = minimize_cost_redistribution(
                np.arange(p), oc, nc, 400, cost_model=cm
            )
            chosen = partition_list(400, nc, arr)
            identity = partition_list(400, nc)
            assert overlap_elements(old, chosen) >= overlap_elements(
                old, identity
            )

    def test_close_to_brute_force(self):
        rng = np.random.default_rng(3)
        cm = RedistributionCostModel(message_weight=1.0)
        ratios = []
        for _ in range(15):
            p = int(rng.integers(3, 6))
            oc = rng.dirichlet(np.ones(p)) + 0.02
            nc = rng.dirichlet(np.ones(p)) + 0.02
            old = partition_list(600, oc)
            greedy = minimize_cost_redistribution(
                np.arange(p), oc, nc, 600, cost_model=cm
            )
            best, _ = brute_force_arrangement(
                np.arange(p), oc, nc, 600, cost_model=cm
            )
            g = overlap_elements(old, partition_list(600, nc, greedy))
            b = overlap_elements(old, partition_list(600, nc, best))
            ratios.append(g / max(b, 1))
        assert np.mean(ratios) > 0.9  # "good suboptimal results"

    def test_no_adaptation_keeps_arrangement(self):
        caps = [0.4, 0.3, 0.3]
        arr = minimize_cost_redistribution(np.arange(3), caps, caps, 300)
        np.testing.assert_array_equal(arr, [0, 1, 2])

    def test_nonidentity_start_arrangement(self):
        start = np.array([2, 0, 1])
        arr = minimize_cost_redistribution(start, [1, 1, 1], [1, 1, 1], 90)
        np.testing.assert_array_equal(arr, start)

    def test_capability_length_mismatch(self):
        with pytest.raises(PartitionError):
            minimize_cost_redistribution(np.arange(3), [1, 1], [1, 1, 1], 10)

    def test_negative_elements_rejected(self):
        with pytest.raises(PartitionError):
            minimize_cost_redistribution(np.arange(2), [1, 1], [1, 1], -5)

    def test_brute_force_p_limit(self):
        with pytest.raises(PartitionError):
            brute_force_arrangement(np.arange(10), np.ones(10), np.ones(10), 10)

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_mcr_gain_at_least_identity_gain(self, data):
        p = data.draw(st.integers(2, 5))
        oc = data.draw(st.lists(st.floats(0.05, 1.0), min_size=p, max_size=p))
        nc = data.draw(st.lists(st.floats(0.05, 1.0), min_size=p, max_size=p))
        n = data.draw(st.integers(p, 300))
        cm = RedistributionCostModel(message_weight=2.0)
        old = partition_list(n, oc)
        arr = minimize_cost_redistribution(np.arange(p), oc, nc, n, cost_model=cm)
        g_chosen = redistribution_gain(old, partition_list(n, nc, arr), cm)
        g_ident = redistribution_gain(old, partition_list(n, nc), cm)
        assert g_chosen >= g_ident - 1e-9
