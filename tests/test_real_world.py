"""Real-process execution world: transport, differential contract, recovery.

Everything here is marked ``real`` (see pytest.ini): selected by default,
skippable with ``-m "not real"`` for the fastest laptop loop, and run alone
by CI's real-smoke job.  Rank functions are module-level so they work under
any multiprocessing start method.
"""

from __future__ import annotations

import os
import socket

import numpy as np
import pytest

from repro.errors import CommunicationError, ConfigurationError, RankFailedError
from repro.net.cluster import uniform_cluster
from repro.net.framing import (
    KIND_ARRAY,
    KIND_PACKED,
    KIND_PICKLE,
    decode_payload,
    encode_payload,
    recv_frame,
    send_frame,
)
from repro.net.message import PackedArrays, pack_arrays
from repro.net.spmd import run_spmd
from repro.runtime.program import ProgramConfig, run_program

pytestmark = pytest.mark.real


# ------------------------------------------------------------------ #
# framing layer
# ------------------------------------------------------------------ #


class TestFraming:
    def _roundtrip(self, payload, tag=101):
        a, b = socket.socketpair()
        try:
            kind, meta, body = encode_payload(payload)
            send_frame(a, 3, tag, kind, meta, body)
            frame = recv_frame(b)
        finally:
            a.close()
            b.close()
        assert frame is not None
        assert frame.source == 3 and frame.tag == tag and frame.kind == kind
        return decode_payload(frame.kind, frame.meta, frame.body)

    def test_array_roundtrip(self):
        arr = np.arange(1000, dtype=np.float64).reshape(50, 20)
        out = self._roundtrip(arr)
        assert out.dtype == arr.dtype and np.array_equal(out, arr)

    def test_array_roundtrip_is_writable(self):
        out = self._roundtrip(np.ones(8))
        out[0] = 7.0  # sim payloads are writable; real ones must match
        assert out[0] == 7.0

    def test_packed_roundtrip(self):
        packed = pack_arrays(
            [np.arange(5, dtype=np.int64), np.linspace(0, 1, 7)]
        )
        out = self._roundtrip(packed)
        assert isinstance(out, PackedArrays)
        assert out.index == packed.index
        assert np.array_equal(out.buffer, packed.buffer)

    def test_pickle_fallback_roundtrip(self):
        payload = {"a": 1, "b": (2.5, "x"), "mask": [True, False]}
        assert self._roundtrip(payload) == payload

    def test_kind_selection(self):
        assert encode_payload(np.ones(3))[0] == KIND_ARRAY
        assert encode_payload(pack_arrays([np.ones(3)]))[0] == KIND_PACKED
        assert encode_payload({"k": 1})[0] == KIND_PICKLE

    def test_eof_between_frames_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_desync_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"not a frame header at all....")
            with pytest.raises(CommunicationError, match="magic"):
                recv_frame(b)
        finally:
            a.close()
            b.close()


# ------------------------------------------------------------------ #
# real SPMD runs
# ------------------------------------------------------------------ #


def _ring_and_collectives(ctx):
    right = (ctx.rank + 1) % ctx.size
    left = (ctx.rank - 1) % ctx.size
    ctx.send(right, np.arange(4, dtype=np.float64) + ctx.rank, tag=200)
    got = ctx.recv(left, 200)
    total = ctx.allreduce(float(got.sum()), lambda a, b: a + b)
    gathered = ctx.allgather(ctx.rank * 10)
    ctx.barrier()
    return (os.getpid(), total, gathered, ctx.clock)


def _clock_monotone_probe(ctx):
    clocks = []
    for _ in range(3):
        clocks.append(ctx.clock)
        ctx.barrier()
        clocks.append(ctx.clock)
    assert clocks == sorted(clocks), "latched clock moved backwards"
    return clocks[-1]


def _deadlock_on_rank0(ctx):
    if ctx.rank == 0:
        return ctx.recv(1, tag=300)  # rank 1 never sends
    return None


def _boom_on_rank2(ctx):
    ctx.barrier()
    if ctx.rank == 2:
        raise ValueError("intentional rank failure")
    # Other ranks block; the error cascade must wake them.
    return ctx.recv(2, tag=400)


class TestRealSPMD:
    def test_runs_on_distinct_processes(self):
        res = run_spmd(
            uniform_cluster(4), _ring_and_collectives,
            world="real", recv_timeout=30,
        )
        pids = {v[0] for v in res.values}
        assert len(pids) == 4
        assert os.getpid() not in pids
        left_sums = [v[1] for v in res.values]
        expected = sum(4 * r + 6 for r in range(4))  # sum over all rings
        assert left_sums == [expected] * 4
        assert all(v[2] == [0, 10, 20, 30] for v in res.values)

    def test_barrier_agrees_clocks(self):
        res = run_spmd(
            uniform_cluster(4), _ring_and_collectives,
            world="real", recv_timeout=30,
        )
        # The rank fn ends right after a barrier: every rank must have
        # adopted the identical agreed clock.
        clocks = [v[3] for v in res.values]
        assert len(set(clocks)) == 1
        assert clocks[0] > 0.0

    def test_clock_monotone_across_barriers(self):
        run_spmd(
            uniform_cluster(3), _clock_monotone_probe,
            world="real", recv_timeout=30,
        )

    def test_recv_timeout_names_blocked_receive(self):
        with pytest.raises(RankFailedError) as ei:
            run_spmd(
                uniform_cluster(2), _deadlock_on_rank0,
                world="real", recv_timeout=1.0,
            )
        failure = ei.value.failures[0]
        msg = str(failure)
        assert "rank 0" in msg
        assert "source=1" in msg
        assert "tag=300" in msg
        assert "recv-timeout" in msg or "RECV_TIMEOUT" in msg

    def test_rank_failure_cascades(self):
        with pytest.raises(RankFailedError) as ei:
            run_spmd(
                uniform_cluster(4), _boom_on_rank2,
                world="real", recv_timeout=30,
            )
        primary = ei.value.failures
        assert 2 in primary
        assert isinstance(primary[2], ValueError)

    def test_world_validation(self):
        with pytest.raises(ConfigurationError, match="world"):
            run_spmd(uniform_cluster(2), _ring_and_collectives, world="cloud")

    def test_trace_ships_spans_from_real_workers(self):
        res = run_spmd(
            uniform_cluster(2), _ring_and_collectives,
            world="real", recv_timeout=30, trace=True,
        )
        events = res.trace.events()
        kinds = {e.kind for e in events}
        assert {"send", "recv", "barrier"} <= kinds
        # Both workers' buffers made it back to the parent merge.
        assert {e.rank for e in events} == {0, 1}

    def test_trace_capacity_caps_real_buffer(self):
        res = run_spmd(
            uniform_cluster(2), _ring_and_collectives,
            world="real", recv_timeout=30, trace=True, trace_capacity=2,
        )
        # Each worker keeps at most 2 events; the merged log counts what
        # each side dropped.
        assert len(res.trace.events()) <= 4
        assert res.trace.dropped_events > 0


# ------------------------------------------------------------------ #
# sim-vs-real differential contract
# ------------------------------------------------------------------ #


class TestDifferential:
    @pytest.mark.parametrize("backend", ["vectorized", "reference"])
    def test_program_values_bit_identical(self, tiny_paper_mesh, backend):
        y0 = np.random.default_rng(11).uniform(0, 100, 500)
        cluster = uniform_cluster(4)
        sim = run_program(
            tiny_paper_mesh, cluster,
            ProgramConfig(iterations=12, backend=backend), y0=y0,
        )
        real = run_program(
            tiny_paper_mesh, cluster,
            ProgramConfig(
                iterations=12, backend=backend,
                world="real", recv_timeout=30,
            ),
            y0=y0,
        )
        assert np.array_equal(sim.values, real.values)

    def test_unannounced_failure_recovery_real_world(self, tiny_paper_mesh):
        y0 = np.random.default_rng(5).uniform(0, 100, 500)
        cluster = uniform_cluster(4)
        # Membership times are wall seconds in the real world: fail rank 1
        # 20 ms in, early enough that 150 iterations always reach it.
        common = dict(
            iterations=150,
            membership="fail:1@0.02",
            checkpoint="interval:3",
            initial_capabilities="equal",
        )
        real = run_program(
            tiny_paper_mesh, cluster,
            ProgramConfig(world="real", recv_timeout=30, **common),
            y0=y0,
        )
        assert real.num_rollbacks >= 1
        assert real.membership_events == 1
        # The sim world sees the same event at virtual t=0.02; recovery and
        # re-execution must leave the final field bit-identical.
        sim = run_program(
            tiny_paper_mesh, cluster, ProgramConfig(**common), y0=y0
        )
        assert np.array_equal(sim.values, real.values)

    def test_config_world_validation(self):
        with pytest.raises(ConfigurationError, match="world"):
            ProgramConfig(world="really")
        with pytest.raises(ConfigurationError, match="trace_capacity"):
            ProgramConfig(trace=True, trace_capacity=0)
        with pytest.raises(ConfigurationError, match="recv_timeout"):
            ProgramConfig(recv_timeout=0.0)

    def test_span_structure_matches_across_worlds(self, tiny_paper_mesh):
        """The span hierarchy is world-independent: same kinds, same
        nesting, same order on every rank — only the clocks differ."""
        y0 = np.random.default_rng(7).uniform(0, 100, 500)
        cluster = uniform_cluster(2)
        common = dict(iterations=6, checkpoint="interval:2", trace=True)
        sim = run_program(
            tiny_paper_mesh, cluster, ProgramConfig(**common), y0=y0
        )
        real = run_program(
            tiny_paper_mesh, cluster,
            ProgramConfig(world="real", recv_timeout=30, **common),
            y0=y0,
        )

        def span_shape(report):
            events = [e for e in report.trace.events() if e.span_id >= 0]
            shape = {}
            for rank in range(cluster.size):
                spans = sorted(
                    (e for e in events if e.rank == rank),
                    key=lambda e: e.seq,
                )
                kind_of = {e.span_id: e.kind for e in spans}
                shape[rank] = [
                    (e.kind, kind_of.get(e.parent_id)) for e in spans
                ]
            return shape

        sim_shape = span_shape(sim)
        assert sim_shape == span_shape(real)
        kinds = {k for spans in sim_shape.values() for k, _ in spans}
        assert {"program", "epoch", "executor", "inspector", "checkpoint"} <= kinds
        # Nesting: epochs under the program span, executors under epochs.
        for spans in sim_shape.values():
            assert ("epoch", "program") in spans
            assert ("executor", "epoch") in spans


def _checkpoint_probe(ctx, n):
    from repro.partition.intervals import partition_list
    from repro.runtime.resilience import take_checkpoint

    part = partition_list(n, np.ones(ctx.size))
    lo, hi = part.interval(ctx.rank)
    local = np.arange(lo, hi, dtype=np.float64)
    cp = take_checkpoint(
        ctx, part, (local,), np.ones(ctx.size, dtype=bool),
        next_iteration=0, epoch=0,
    )
    return sorted(cp.replicas)


class TestRealResilienceProtocol:
    def test_checkpoint_ring_over_sockets(self):
        res = run_spmd(
            uniform_cluster(4), _checkpoint_probe, 400,
            world="real", recv_timeout=30,
        )
        # Each rank holds the replica of its ring predecessor.
        assert res.values == [[3], [0], [1], [2]]
