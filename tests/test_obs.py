"""The observability layer (:mod:`repro.obs`).

Covers the span tracer (nesting, determinism, neutrality), the typed
metrics registry and its snapshot-and-merge path, the Chrome trace-event
exporter (structure, round-trip, timebases), the ambient capture window,
stdlib logging configuration, the instrumented runtime counters, the
bulk-vs-scalar receive parity regression, and the `--trace-out` /
`repro trace` CLI surface.
"""

from __future__ import annotations

import json
import logging

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.net.cluster import uniform_cluster
from repro.net.spmd import run_spmd
from repro.net.trace import TraceEvent, TraceLog
from repro.obs import (
    MetricsRegistry,
    Tracer,
    capture_traces,
    chrome_trace,
    load_chrome_trace,
    merge_snapshots,
    phase_table,
    write_chrome_trace,
)
from repro.obs.capture import active_capture
from repro.obs.logconf import LEVEL_ENV, configure_logging
from repro.runtime.program import ProgramConfig, run_program
from repro.serve import JobQueue, JobSpec, ServiceSession


# --------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------- #


class TestTracer:
    def _tracer(self, enabled=True):
        log = TraceLog(enabled=enabled)
        clock = [0.0]

        def tick():
            clock[0] += 1.0
            return clock[0]

        return log, Tracer(log, rank=0, clock_fn=tick, wall_fn=tick)

    def test_nested_spans_record_parent_links(self):
        log, tracer = self._tracer()
        with tracer.span("program"):
            with tracer.span("epoch", label="e0"):
                with tracer.span("executor"):
                    pass
            with tracer.span("epoch", label="e1"):
                pass
        spans = log.spans()
        by_id = {e.span_id: e for e in spans}
        # Ids are allocated in open order: program=0, e0=1, executor=2.
        assert by_id[0].kind == "program" and by_id[0].parent_id == -1
        assert by_id[1].kind == "epoch" and by_id[1].parent_id == 0
        assert by_id[2].kind == "executor" and by_id[2].parent_id == 1
        assert by_id[3].kind == "epoch" and by_id[3].parent_id == 0
        assert by_id[3].label == "e1"
        # Events are recorded on close: innermost first.
        assert [e.kind for e in spans] == [
            "executor", "epoch", "epoch", "program",
        ]

    def test_span_brackets_the_clock(self):
        log, tracer = self._tracer()
        with tracer.span("inspector"):
            pass
        (ev,) = log.spans()
        assert ev.t_end > ev.t_start
        assert ev.wall_end > ev.wall_start >= 0.0

    def test_instant_is_zero_width(self):
        log, tracer = self._tracer()
        with tracer.span("program"):
            tracer.instant("admit", label="j0")
        admit = log.spans("admit")[0]
        assert admit.t_start == admit.t_end
        assert admit.parent_id == 0

    def test_disabled_tracer_records_nothing(self):
        log, tracer = self._tracer(enabled=False)
        assert not tracer.enabled
        with tracer.span("program"):
            tracer.instant("admit")
        assert len(log) == 0
        assert tracer.current_span == -1

    def test_current_span_tracks_the_stack(self):
        _, tracer = self._tracer()
        assert tracer.current_span == -1
        with tracer.span("program"):
            assert tracer.current_span == 0
            with tracer.span("epoch"):
                assert tracer.current_span == 1
            assert tracer.current_span == 0
        assert tracer.current_span == -1

    def test_span_closes_on_exception(self):
        log, tracer = self._tracer()
        with pytest.raises(ValueError):
            with tracer.span("program"):
                raise ValueError("boom")
        assert tracer.current_span == -1
        assert log.spans("program")


# --------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------- #


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        m = MetricsRegistry()
        m.count("msgs")
        m.count("msgs", 4)
        m.count("bytes", 100)
        snap = m.snapshot()
        assert snap["counters"] == {"msgs": 5, "bytes": 100}

    def test_gauge_is_high_water_mark(self):
        m = MetricsRegistry()
        m.gauge_max("depth", 3)
        m.gauge_max("depth", 1)
        m.gauge_max("depth", 7)
        assert m.snapshot()["gauges"] == {"depth": 7}

    def test_histogram_folds_observations(self):
        m = MetricsRegistry()
        for v in (2.0, 8.0, 5.0):
            m.observe("wait", v)
        h = m.snapshot()["histograms"]["wait"]
        assert h == {"count": 3, "total": 15.0, "min": 2.0, "max": 8.0}

    def test_snapshot_is_a_deep_copy(self):
        m = MetricsRegistry()
        m.count("c")
        m.observe("h", 1.0)
        snap = m.snapshot()
        m.count("c")
        m.observe("h", 9.0)
        assert snap["counters"]["c"] == 1
        assert snap["histograms"]["h"]["count"] == 1

    def test_snapshot_is_json_able(self):
        m = MetricsRegistry()
        m.count("c", 2)
        m.gauge_max("g", 1.5)
        m.observe("h", 0.25)
        assert json.loads(json.dumps(m.snapshot())) == m.snapshot()

    def test_merge_rules_per_type(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("msgs", 3)
        b.count("msgs", 4)
        a.gauge_max("depth", 2)
        b.gauge_max("depth", 9)
        a.observe("wait", 1.0)
        b.observe("wait", 5.0)
        b.observe("wait", 0.5)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"] == {"msgs": 7}
        assert merged["gauges"] == {"depth": 9}
        assert merged["histograms"]["wait"] == {
            "count": 3, "total": 6.5, "min": 0.5, "max": 5.0,
        }

    def test_merge_skips_missing_ranks(self):
        a = MetricsRegistry()
        a.count("c")
        merged = merge_snapshots([None, a.snapshot(), None])
        assert merged["counters"] == {"c": 1}

    def test_merge_is_order_independent(self):
        snaps = []
        for i in range(4):
            m = MetricsRegistry()
            m.count("c", i + 1)
            m.gauge_max("g", float(10 - i))
            m.observe("h", float(i))
            snaps.append(m.snapshot())
        assert merge_snapshots(snaps) == merge_snapshots(snaps[::-1])


# --------------------------------------------------------------------- #
# Chrome trace export
# --------------------------------------------------------------------- #


def _sample_log() -> TraceLog:
    log = TraceLog(enabled=True)
    log.record(TraceEvent("program", 0, 0.0, 4.0, span_id=0,
                          wall_start=10.0, wall_end=14.0))
    log.record(TraceEvent("send", 0, 1.0, 1.5, nbytes=64, peer=1, tag=7))
    log.record(TraceEvent("recv", 1, 1.0, 2.0, nbytes=64, peer=0, tag=7))
    log.record(TraceEvent("admit", -1, 3.0, 3.0, label="j0", span_id=0))
    return log


class TestChromeExport:
    def test_document_structure(self):
        doc = chrome_trace(_sample_log(), metadata={"command": "test"})
        assert doc["metadata"]["generator"] == "repro.obs"
        assert doc["metadata"]["timebase"] == "clock"
        assert doc["metadata"]["command"] == "test"
        meta = {e["pid"]: e["args"]["name"] for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        assert meta[0] == "rank 0"
        assert meta[1] == "rank 1"
        assert meta[1_000_000] == "service"  # the rank -1 track

    def test_slices_are_microseconds(self):
        doc = chrome_trace(_sample_log())
        send = next(e for e in doc["traceEvents"]
                    if e["ph"] == "X" and e["cat"] == "send")
        assert send["ts"] == pytest.approx(1.0e6)
        assert send["dur"] == pytest.approx(0.5e6)
        assert send["args"]["nbytes"] == 64
        assert send["args"]["peer"] == 1

    def test_wall_timebase_keeps_only_spans(self):
        doc = chrome_trace(_sample_log(), timebase="wall")
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # Only the program span carries a wall interval; the admit span
        # (no wall clock recorded) and the leaf send/recv are dropped.
        assert [e["cat"] for e in slices] == ["program"]
        assert slices[0]["ts"] == pytest.approx(10.0e6)

    def test_include_wall_false_strips_host_clocks(self):
        doc = chrome_trace(_sample_log(), include_wall=False)
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                assert "wall_start" not in e["args"]
                assert "wall_end" not in e["args"]

    def test_unknown_timebase_rejected(self):
        with pytest.raises(ConfigurationError, match="timebase"):
            chrome_trace(_sample_log(), timebase="cpu")

    def test_write_load_round_trip(self, tmp_path):
        log = _sample_log()
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), log)
        back = load_chrome_trace(str(path))
        assert back.events() == sorted(
            log.events(), key=lambda e: (e.rank if e.rank >= 0 else 10**6, e.seq)
        )

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not_a_trace.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ConfigurationError, match="traceEvents"):
            load_chrome_trace(str(path))
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({
            "traceEvents": [{"ph": "X", "pid": 0, "ts": 0, "dur": 1,
                             "name": "x", "args": {}}],
        }))
        with pytest.raises(ConfigurationError, match="kind"):
            load_chrome_trace(str(foreign))

    def test_phase_table_rows_and_drop_note(self):
        log = _sample_log()
        table = phase_table(log)
        assert "Per-rank phase breakdown" in table
        assert "send" in table and "program" in table
        assert "service" in table  # the rank -1 row
        assert "dropped" not in table
        capped = TraceLog(enabled=True, capacity=1)
        capped.record(TraceEvent("send", 0, 0.0, 1.0))
        capped.record(TraceEvent("send", 0, 1.0, 2.0))
        assert "dropped 1 event(s)" in phase_table(capped)


# --------------------------------------------------------------------- #
# program-level observability
# --------------------------------------------------------------------- #


def _run(graph, y0, *, trace=False, **kw):
    return run_program(
        graph, uniform_cluster(3),
        ProgramConfig(iterations=8, checkpoint="interval:3", trace=trace, **kw),
        y0=y0,
    )


class TestProgramObservability:
    def test_report_carries_spans_and_metrics(self, tiny_paper_mesh, rng):
        y0 = rng.uniform(0, 100, 500)
        report = _run(tiny_paper_mesh, y0, trace=True)
        kinds = {e.kind for e in report.trace.spans()}
        assert {"program", "epoch", "inspector", "executor",
                "checkpoint"} <= kinds
        # Every rank opened its own program span.
        assert {e.rank for e in report.trace.spans("program")} == {0, 1, 2}
        counters = report.metrics["counters"]
        assert counters["net.messages_sent"] > 0
        assert counters["net.messages_recv"] > 0
        assert counters["inspector.full_builds"] == 3  # one per rank
        assert counters["cp.checkpoints"] == report.num_checkpoints * 3
        assert counters["cp.checkpoint_bytes"] > 0
        assert len(report.metrics_by_rank) == 3

    def test_trace_is_deterministic_across_runs(self, tiny_paper_mesh, rng):
        y0 = rng.uniform(0, 100, 500)
        a = _run(tiny_paper_mesh, y0, trace=True)
        b = _run(tiny_paper_mesh, y0, trace=True)

        def shape(report):
            # Everything except the host wall clocks, which legitimately
            # differ run to run.
            return sorted(
                (e.rank, e.seq, e.kind, e.t_start, e.t_end, e.nbytes,
                 e.peer, e.tag, e.label, e.span_id, e.parent_id)
                for e in report.trace.events()
            )

        assert shape(a) == shape(b)

    def test_tracing_is_neutral(self, tiny_paper_mesh, rng):
        """The obs-neutral invariant, asserted directly: tracing changes
        no virtual quantity and no metric counter."""
        y0 = rng.uniform(0, 100, 500)
        plain = _run(tiny_paper_mesh, y0, trace=False)
        traced = _run(tiny_paper_mesh, y0, trace=True)
        assert np.array_equal(plain.values, traced.values)
        assert plain.clocks == traced.clocks
        assert plain.makespan == traced.makespan
        assert plain.num_checkpoints == traced.num_checkpoints
        assert plain.metrics["counters"] == traced.metrics["counters"]
        assert plain.trace is None or len(plain.trace) == 0

    def test_metrics_follow_the_collective_counters(self, tiny_paper_mesh, rng):
        y0 = rng.uniform(0, 100, 500)
        report = run_program(
            tiny_paper_mesh, uniform_cluster(3),
            ProgramConfig(
                iterations=20, checkpoint="interval:4",
                membership="fail:1@0.02", load_balance="centralized",
            ),
            y0=y0,
        )
        counters = report.metrics["counters"]
        assert report.membership_events == 1
        assert counters["membership.events"] >= 1
        # Every rank that participated in a recovery counted it once, so
        # the cluster-wide sum is a positive multiple of the collective
        # rollback count.
        assert report.num_rollbacks >= 1
        assert counters["cp.rollbacks"] >= report.num_rollbacks
        assert counters["cp.rollbacks"] % report.num_rollbacks == 0
        assert counters["lb.checks"] >= 1


# --------------------------------------------------------------------- #
# bulk vs scalar receive parity (regression)
# --------------------------------------------------------------------- #


_PARITY_TAG = 612


def _bulk_recv_fn(ctx):
    """Rank 0 drains everyone through the bulk receive_bulk path."""
    if ctx.rank == 0:
        ctx.recv_expected(range(1, ctx.size), tag=_PARITY_TAG)
    else:
        ctx.send(0, np.arange(32, dtype=np.float64), tag=_PARITY_TAG)
    return ctx.metrics.snapshot()


def _scalar_recv_fn(ctx):
    """Same traffic, received one message at a time."""
    if ctx.rank == 0:
        for _ in range(1, ctx.size):
            ctx.recv(tag=_PARITY_TAG)
    else:
        ctx.send(0, np.arange(32, dtype=np.float64), tag=_PARITY_TAG)
    return ctx.metrics.snapshot()


class TestRecvParity:
    def test_bulk_path_counts_like_scalar_path(self):
        cluster = uniform_cluster(4)
        bulk = run_spmd(cluster, _bulk_recv_fn).values
        scalar = run_spmd(cluster, _scalar_recv_fn).values
        b0, s0 = bulk[0]["counters"], scalar[0]["counters"]
        assert b0["net.messages_recv"] == s0["net.messages_recv"] == 3
        assert b0["net.bytes_recv"] == s0["net.bytes_recv"] > 0
        bh = bulk[0]["histograms"]["net.recv_wait"]
        sh = scalar[0]["histograms"]["net.recv_wait"]
        assert bh["count"] == sh["count"] == 3
        # Senders are untouched by the receive path choice.
        assert bulk[1] == scalar[1]


# --------------------------------------------------------------------- #
# ambient capture window
# --------------------------------------------------------------------- #


class TestCaptureWindow:
    def test_window_captures_untraced_runs(self, tiny_paper_mesh, rng):
        y0 = rng.uniform(0, 100, 500)
        assert active_capture() is None
        with capture_traces() as window:
            assert active_capture() is window
            _run(tiny_paper_mesh, y0)  # config itself does NOT trace
        assert active_capture() is None
        assert len(window.traces) == 1
        label, trace = window.traces[0]
        assert "3ranks" in label
        assert trace.spans("program")

    def test_window_capacity_reaches_the_log(self, tiny_paper_mesh, rng):
        y0 = rng.uniform(0, 100, 500)
        with capture_traces(capacity=10) as window:
            _run(tiny_paper_mesh, y0)
        _, trace = window.traces[0]
        assert len(trace.events()) <= 10
        assert trace.dropped_events > 0

    def test_windows_nest(self):
        with capture_traces() as outer:
            with capture_traces() as inner:
                assert active_capture() is inner
            assert active_capture() is outer
        assert active_capture() is None


# --------------------------------------------------------------------- #
# logging configuration
# --------------------------------------------------------------------- #


class TestLogging:
    @pytest.fixture(autouse=True)
    def _restore(self):
        yield
        # Leave the tree as other tests expect it.
        configure_logging("info")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="log level"):
            configure_logging("chatty")

    def test_rank_prefix(self, capsys):
        configure_logging("info", rank=3)
        logging.getLogger("repro.procs").info("hello from a worker")
        assert "[rank 3] hello from a worker" in capsys.readouterr().err

    def test_level_from_environment(self, monkeypatch, capsys):
        monkeypatch.setenv(LEVEL_ENV, "error")
        configure_logging()
        logging.getLogger("repro.cli").warning("should be suppressed")
        logging.getLogger("repro.cli").error("should appear")
        err = capsys.readouterr().err
        assert "should be suppressed" not in err
        assert "should appear" in err

    def test_reconfigure_does_not_stack_handlers(self, capsys):
        for _ in range(3):
            configure_logging("info")
        logging.getLogger("repro.cli").info("once")
        assert capsys.readouterr().err.count("once") == 1


# --------------------------------------------------------------------- #
# service observability
# --------------------------------------------------------------------- #


def _jobs(n):
    return [
        JobSpec(job_id=f"j{i}", vertices=48, iterations=2, ranks=1 + i % 2)
        for i in range(n)
    ]


class TestServiceObservability:
    def test_traced_session_emits_job_spans(self):
        session = ServiceSession(
            uniform_cluster(3), JobQueue(_jobs(4)), trace=True
        )
        report = session.run()
        assert report.trace is not None
        admits = report.trace.spans("admit")
        jobs = report.trace.spans("job")
        assert len(admits) == 4
        # One service-track span per job plus one occupancy span per
        # granted rank.
        service_jobs = [e for e in jobs if e.rank < 0]
        rank_jobs = [e for e in jobs if e.rank >= 0]
        assert len(service_jobs) == 4
        assert len(rank_jobs) == sum(1 + i % 2 for i in range(4))
        admit_ids = {e.span_id for e in admits}
        assert all(e.parent_id in admit_ids for e in service_jobs)
        assert session.metrics.snapshot()["counters"]["serve.jobs_admitted"] == 4

    def test_untraced_session_report_is_unchanged(self):
        report = ServiceSession(uniform_cluster(3), JobQueue(_jobs(3))).run()
        assert report.trace is None
        # The differential-contract surface is pinned: tracing must never
        # add keys here.
        traced = ServiceSession(
            uniform_cluster(3), JobQueue(_jobs(3)), trace=True
        ).run()
        assert report.metrics() == traced.metrics()
        assert "trace" not in report.to_dict()


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #


class TestCliTrace:
    def _run_with_trace(self, path, *extra):
        return main([
            "run", "--vertices", "200", "--iterations", "4",
            "--workstations", "2", "--trace-out", str(path), *extra,
        ])

    def test_run_trace_out_writes_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert self._run_with_trace(out) == 0
        assert f"trace: {out}" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["metadata"]["generator"] == "repro.obs"
        cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"program", "epoch", "executor", "inspector"} <= cats

    def test_trace_summary_reads_export(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert self._run_with_trace(out) == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(out)]) == 0
        text = capsys.readouterr().out
        assert "Per-rank phase breakdown" in text
        assert "executor" in text

    def test_trace_export_rewrites_timebase(self, tmp_path, capsys):
        src = tmp_path / "run.json"
        assert self._run_with_trace(src) == 0
        dst = tmp_path / "wall.json"
        assert main([
            "trace", "export", str(src), "-o", str(dst),
            "--timebase", "wall",
        ]) == 0
        doc = json.loads(dst.read_text())
        assert doc["metadata"]["timebase"] == "wall"

    def test_trace_capacity_flag(self, tmp_path, capsys):
        out = tmp_path / "capped.json"
        assert self._run_with_trace(out, "--trace-capacity", "16") == 0
        assert "dropped" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) <= 16
        assert doc["metadata"]["dropped_events"] > 0

    def test_trace_missing_file_fails_cleanly(self, tmp_path, capsys):
        rc = main(["trace", "summary", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_trace_out(self, tmp_path, capsys):
        stream = tmp_path / "jobs.jsonl"
        rows = [
            {"job_id": f"j{i}", "vertices": 48, "iterations": 2, "ranks": 1}
            for i in range(3)
        ]
        stream.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        out = tmp_path / "serve.json"
        rc = main([
            "serve", "--jobs", str(stream), "--cluster-size", "2",
            "--trace-out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"admit", "job"} <= cats
