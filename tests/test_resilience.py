"""Tests for repro.runtime.resilience: checkpoint, recovery, policies,
and the --membership/--checkpoint DSL validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    ConfigurationError,
    RankFailedError,
    ResilienceError,
)
from repro.graph.generators import paper_mesh
from repro.net.cluster import uniform_cluster
from repro.net.loadmodel import MembershipEvent, MembershipTrace
from repro.net.network import ETHERNET_10MBIT, PointToPointNetwork
from repro.net.spmd import run_spmd
from repro.partition.intervals import partition_list
from repro.runtime.backend import BACKENDS
from repro.runtime.program import ProgramConfig, run_program
from repro.runtime.resilience import (
    CostModelCheckpoint,
    IntervalCheckpoint,
    check_recoverable,
    estimate_checkpoint_cost,
    format_checkpoint_policy,
    parse_checkpoint_policy,
    recover_redistribute_fields,
    replica_partners,
    ring_partners,
    take_checkpoint,
)


# ----------------------------------------------------------------------
# DSL validation: every malformed spec gets an actionable message


class TestMembershipDSLValidation:
    def test_fail_event_parses(self):
        trace = MembershipTrace.parse("fail:2@7.5", 4)
        assert trace.events[0].kind == "fail"
        assert trace.has_failures
        assert trace.failed_mask(8.0).tolist() == [False, False, True, False]

    def test_unknown_event_kind_lists_vocabulary(self):
        with pytest.raises(ValueError, match="unknown event kind 'oops'"):
            MembershipTrace.parse("oops:1@3", 4)
        with pytest.raises(ValueError, match="leave, join, replace, fail"):
            MembershipTrace.parse("oops:1@3", 4)

    def test_non_monotonic_times_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing time order"):
            MembershipTrace.parse("leave:0@9, join:0@5", 4)

    def test_non_monotonic_message_names_offender(self):
        with pytest.raises(ValueError, match="goes backwards"):
            MembershipTrace.parse("fail:1@10, leave:2@3", 4)

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError, match=r"valid ranks: 0\.\.3"):
            MembershipTrace.parse("leave:7@2", 4)

    def test_standby_rank_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            MembershipTrace.parse("standby:4", 4)

    def test_replace_ranks_validated(self):
        with pytest.raises(ValueError, match="out of range"):
            MembershipTrace.parse("replace:0->9@2", 4)

    def test_malformed_token_shape(self):
        with pytest.raises(ValueError, match="kind:rank@time"):
            MembershipTrace.parse("leave", 4)

    def test_coincident_times_allowed(self):
        trace = MembershipTrace.parse("standby:3, leave:0@5, join:3@5", 4)
        assert len(trace.events) == 2

    def test_fail_requires_active_rank(self):
        with pytest.raises(ValueError, match="cannot fail"):
            MembershipTrace(4, [MembershipEvent(2.0, "fail", 1)],
                            initially_inactive=[1])

    def test_failed_rank_rejoins_blank(self):
        trace = MembershipTrace(
            3,
            [MembershipEvent(1.0, "fail", 1), MembershipEvent(2.0, "join", 1)],
        )
        assert trace.failed_mask(1.5)[1]
        assert not trace.failed_mask(2.5)[1]
        assert trace.active_mask(2.5)[1]


class TestCheckpointDSLValidation:
    def test_interval_parses(self):
        policy = parse_checkpoint_policy("interval:4")
        assert isinstance(policy, IntervalCheckpoint) and policy.k == 4

    def test_cost_parses(self):
        policy = parse_checkpoint_policy("cost:50")
        assert isinstance(policy, CostModelCheckpoint) and policy.mtbf == 50.0

    def test_unknown_policy_lists_vocabulary(self):
        with pytest.raises(ResilienceError, match="known policies"):
            parse_checkpoint_policy("hourly:3")

    def test_missing_parameter(self):
        with pytest.raises(ResilienceError, match="missing its parameter"):
            parse_checkpoint_policy("interval")
        with pytest.raises(ResilienceError, match="missing its parameter"):
            parse_checkpoint_policy("cost:")

    def test_non_integer_interval(self):
        with pytest.raises(ResilienceError, match="whole number"):
            parse_checkpoint_policy("interval:2.5")

    def test_interval_below_one(self):
        with pytest.raises(ResilienceError, match=">= 1"):
            parse_checkpoint_policy("interval:0")

    def test_non_numeric_mtbf(self):
        with pytest.raises(ResilienceError, match="MTBF estimate"):
            parse_checkpoint_policy("cost:soon")

    def test_non_positive_mtbf(self):
        with pytest.raises(ResilienceError, match="finite positive"):
            parse_checkpoint_policy("cost:-3")

    def test_program_config_normalizes_and_validates(self):
        cfg = ProgramConfig(iterations=2, checkpoint="interval:4")
        assert isinstance(cfg.checkpoint, IntervalCheckpoint)
        with pytest.raises(ResilienceError):
            ProgramConfig(iterations=2, checkpoint="bogus:1")


# ----------------------------------------------------------------------
# policies


class TestPolicies:
    def test_interval_fires_every_k(self):
        policy = IntervalCheckpoint(3)
        due = [
            policy.due(it, 0.0, last_checkpoint_clock=0.0, checkpoint_cost=0.1)
            for it in range(9)
        ]
        assert due == [False, False, True] * 3

    def test_cost_model_uses_youngs_interval(self):
        policy = CostModelCheckpoint(mtbf=50.0)
        # T* = sqrt(2 * 1.0 * 50) = 10
        assert policy.interval(1.0) == pytest.approx(10.0)
        assert not policy.due(
            0, 9.9, last_checkpoint_clock=0.0, checkpoint_cost=1.0
        )
        assert policy.due(
            0, 10.0, last_checkpoint_clock=0.0, checkpoint_cost=1.0
        )

    def test_cost_model_floor_prevents_storm(self):
        policy = CostModelCheckpoint(mtbf=50.0, min_interval_s=5.0)
        assert policy.interval(0.0) == 5.0


# ----------------------------------------------------------------------
# ring assignment and analytic pricing


class TestRingPartners:
    def test_ring_over_active_set(self):
        part = partition_list(100, [0.25, 0.25, 0.25, 0.25])
        partners = ring_partners(part, np.array([True, True, True, True]))
        assert partners == {0: 1, 1: 2, 2: 3, 3: 0}

    def test_inactive_ranks_skipped(self):
        part = partition_list(90, [1 / 3, 0.0, 1 / 3, 1 / 3])
        partners = ring_partners(part, np.array([True, False, True, True]))
        assert partners == {0: 2, 2: 3, 3: 0}

    def test_empty_interval_holder_but_not_owner(self):
        # Rank 1 is active but owns nothing: it holds a replica (it is
        # rank 0's successor) yet appears as no one's owner.
        part = partition_list(90, [0.5, 0.0, 0.5])
        partners = ring_partners(part, np.ones(3, dtype=bool))
        assert partners == {0: 1, 2: 0}

    def test_single_active_rank_has_no_partner(self):
        part = partition_list(50, [1.0])
        assert ring_partners(part, np.array([True])) == {}


class TestEstimateCheckpointCost:
    def test_prices_fields_and_identity(self):
        part = partition_list(1000, [0.5, 0.5])
        net = PointToPointNetwork()
        one = estimate_checkpoint_cost(net, part, np.ones(2, bool), 8)
        three = estimate_checkpoint_cost(
            net, part, np.ones(2, bool), 8, num_fields=3
        )
        assert three > one > 0.0

    def test_shared_medium_serializes(self):
        part = partition_list(4000, [0.25, 0.25, 0.25, 0.25])
        shared = estimate_checkpoint_cost(
            ETHERNET_10MBIT(), part, np.ones(4, bool), 8
        )
        switched = estimate_checkpoint_cost(
            ETHERNET_10MBIT(), part, np.ones(4, bool), 8,
            shared_medium=False,
        )
        assert shared > switched

    def test_zero_without_partners(self):
        part = partition_list(50, [1.0])
        net = PointToPointNetwork()
        assert estimate_checkpoint_cost(net, part, np.ones(1, bool), 8) == 0.0

    def test_rejects_bad_sizes(self):
        part = partition_list(50, [0.5, 0.5])
        net = PointToPointNetwork()
        with pytest.raises(ResilienceError):
            estimate_checkpoint_cost(net, part, np.ones(2, bool), 0)
        with pytest.raises(ResilienceError):
            estimate_checkpoint_cost(
                net, part, np.ones(2, bool), 8, num_fields=0
            )


# ----------------------------------------------------------------------
# checkpoint + recovery mechanics (unit level, via run_spmd)


def _checkpoint_and_recover(n, p, dead, backend, *, k_fields=2):
    """Take an epoch, kill *dead*, reassemble on survivors; returns the
    per-rank recovered blocks plus the expected full arrays."""
    part = partition_list(n, np.ones(p))
    base = [
        np.arange(n, dtype=np.float64) * (f + 1) + 0.25 for f in range(k_fields)
    ]
    active = np.ones(p, dtype=bool)
    survivors = active.copy()
    survivors[dead] = False
    failed = ~survivors
    new_part = partition_list(n, survivors.astype(np.float64))

    def fn(ctx):
        lo, hi = part.interval(ctx.rank)
        fields = [b[lo:hi].copy() for b in base]
        cp = take_checkpoint(
            ctx, part, fields, active,
            next_iteration=0, epoch=0, backend=backend,
        )
        # Restored-from-epoch data must match the checkpoint exactly.
        for snap, b in zip(cp.snapshot, (b[lo:hi] for b in base)):
            np.testing.assert_array_equal(snap, b)
        # Survivors mutate their working copy post-checkpoint; the dead
        # rank's working copy is irrelevant (its memory is gone).
        restored = [s.copy() for s in cp.snapshot]
        outs = recover_redistribute_fields(
            ctx, part, new_part, restored,
            failed=failed, partners=cp.partners, replicas=cp.replicas,
            backend=backend,
        )
        ctx.barrier()
        return [o.copy() for o in outs], ctx.clock

    res = run_spmd(uniform_cluster(p), fn)
    return res, new_part, base


class TestCheckpointRecovery:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_epoch_reassembles_after_failure(self, backend):
        res, new_part, base = _checkpoint_and_recover(120, 4, 1, backend)
        for rank, (outs, _) in enumerate(res.values):
            lo, hi = new_part.interval(rank)
            for f, b in zip(outs, base):
                np.testing.assert_array_equal(f, b[lo:hi])

    def test_backends_bit_identical(self):
        blocks = {}
        clocks = {}
        for backend in BACKENDS:
            res, _, _ = _checkpoint_and_recover(97, 4, 2, backend, k_fields=3)
            blocks[backend] = [v[0] for v in res.values]
            clocks[backend] = [v[1] for v in res.values]
        assert clocks["reference"] == clocks["vectorized"]
        for a, b in zip(blocks["reference"], blocks["vectorized"]):
            for fa, fb in zip(a, b):
                np.testing.assert_array_equal(fa, fb)

    def test_partner_failure_is_unrecoverable(self):
        part = partition_list(80, np.ones(4))
        partners = ring_partners(part, np.ones(4, dtype=bool))
        failed = np.array([False, True, True, False])
        with pytest.raises(ResilienceError, match="both failed"):
            check_recoverable(part, partners, failed)

    def test_missing_partner_is_unrecoverable(self):
        part = partition_list(80, np.ones(4))
        failed = np.array([False, True, False, False])
        with pytest.raises(ResilienceError, match="no replica partner"):
            check_recoverable(part, {}, failed)

    def test_dead_rank_owning_nothing_needs_no_replica(self):
        part = partition_list(80, [0.5, 0.0, 0.5])
        failed = np.array([False, True, False])
        check_recoverable(part, {}, failed)  # does not raise

    def test_recovery_partition_must_exclude_dead(self):
        part = partition_list(60, np.ones(3))

        def fn(ctx):
            lo, hi = part.interval(ctx.rank)
            fields = [np.zeros(hi - lo)]
            cp = take_checkpoint(
                ctx, part, fields, np.ones(3, bool),
                next_iteration=0, epoch=0,
            )
            recover_redistribute_fields(
                ctx, part, part, fields,
                failed=np.array([False, True, False]),
                partners=cp.partners, replicas=cp.replicas,
            )

        with pytest.raises(RankFailedError) as exc:
            run_spmd(uniform_cluster(3), fn)
        assert any(
            isinstance(e, ResilienceError)
            for e in exc.value.failures.values()
        )


# ----------------------------------------------------------------------
# end to end through run_program


def _fail_run(
    p=4,
    *,
    backend=None,
    lb="centralized",
    checkpoint="interval:4",
    events=((0.04, "fail", 1),),
    iterations=20,
    n=800,
    inactive=(),
):
    graph = paper_mesh(n, seed=0)
    y0 = np.random.default_rng(0).uniform(0, 100, graph.num_vertices)
    trace = MembershipTrace(
        p,
        [MembershipEvent(t, kind, r) for t, kind, r in events],
        initially_inactive=inactive,
    )
    cluster = uniform_cluster(p).with_membership(trace)
    config = ProgramConfig(
        iterations=iterations,
        backend=backend,
        initial_capabilities="equal",
        load_balance=lb,
        checkpoint=checkpoint,
    )
    return run_program(graph, cluster, config, y0=y0)


def _baseline_run(p=4, *, backend=None, lb="centralized", iterations=20, n=800):
    graph = paper_mesh(n, seed=0)
    y0 = np.random.default_rng(0).uniform(0, 100, graph.num_vertices)
    config = ProgramConfig(
        iterations=iterations,
        backend=backend,
        initial_capabilities="equal",
        load_balance=lb,
    )
    return run_program(graph, uniform_cluster(p), config, y0=y0)


class TestFailureRuns:
    def test_values_bit_identical_to_no_failure_run(self):
        rep = _fail_run()
        rep0 = _baseline_run()
        assert np.array_equal(rep.values, rep0.values)
        assert rep.num_rollbacks == 1
        assert rep.membership_events == 1
        # The failure costs time: rollback + re-execution + checkpoints.
        assert rep.makespan > rep0.makespan

    def test_failed_rank_ends_empty(self):
        rep = _fail_run()
        assert rep.partition_final is not None
        assert rep.partition_final.size(1) == 0

    @pytest.mark.parametrize("lb", ["off", "centralized"])
    def test_virtual_metrics_bit_identical_across_backends(self, lb):
        reports = {
            backend: _fail_run(backend=backend, lb=lb)
            for backend in BACKENDS
        }
        a, b = reports["vectorized"], reports["reference"]
        assert a.makespan == b.makespan
        assert a.clocks == b.clocks
        assert np.array_equal(a.values, b.values)
        assert a.num_checkpoints == b.num_checkpoints
        assert a.checkpoint_time == b.checkpoint_time
        assert a.rollback_time == b.rollback_time
        assert a.lost_time == b.lost_time

    def test_static_baseline_recovers_too(self):
        rep = _fail_run(lb="off")
        rep0 = _baseline_run(lb="off")
        assert np.array_equal(rep.values, rep0.values)
        assert rep.num_rollbacks == 1
        assert rep.partition_final.size(1) == 0

    def test_repeated_failures_roll_back_twice(self):
        rep = _fail_run(
            events=((0.03, "fail", 1), (0.07, "fail", 2)), iterations=20
        )
        rep0 = _baseline_run()
        assert rep.num_rollbacks == 2
        assert np.array_equal(rep.values, rep0.values)
        sizes = rep.partition_final.sizes()
        assert sizes[1] == 0 and sizes[2] == 0

    def test_failure_before_first_periodic_checkpoint(self):
        # interval:100 never fires mid-run; recovery rolls back to the
        # bootstrap epoch (the initial state) and re-executes everything.
        rep = _fail_run(checkpoint="interval:100", events=((1e-4, "fail", 0),))
        rep0 = _baseline_run()
        assert np.array_equal(rep.values, rep0.values)
        assert rep.num_rollbacks == 1
        # bootstrap + post-recovery epochs only
        assert rep.num_checkpoints == 2

    def test_cost_model_policy_end_to_end(self):
        rep = _fail_run(checkpoint="cost:0.05")
        rep0 = _baseline_run()
        assert np.array_equal(rep.values, rep0.values)
        assert rep.num_checkpoints >= 2

    def test_mixed_batch_fail_and_leave(self):
        rep = _fail_run(
            events=((0.04, "fail", 1), (0.04, "leave", 2)), iterations=20
        )
        rep0 = _baseline_run()
        assert np.array_equal(rep.values, rep0.values)
        sizes = rep.partition_final.sizes()
        assert sizes[1] == 0 and sizes[2] == 0

    def test_checkpoint_overhead_only_run(self):
        # A checkpoint policy without any membership trace: pure overhead,
        # same final values, nonzero checkpoint time.
        graph = paper_mesh(600, seed=0)
        y0 = np.random.default_rng(0).uniform(0, 100, graph.num_vertices)
        cfg = ProgramConfig(iterations=10, initial_capabilities="equal",
                            checkpoint="interval:2")
        rep = run_program(graph, uniform_cluster(3), cfg, y0=y0)
        base = run_program(
            graph, uniform_cluster(3),
            ProgramConfig(iterations=10, initial_capabilities="equal"),
            y0=y0,
        )
        assert np.array_equal(rep.values, base.values)
        assert rep.num_checkpoints == 5  # bootstrap + iterations 1,3,5,7
        assert rep.checkpoint_time > 0
        assert rep.makespan > base.makespan

    def test_empty_rank_failure_needs_no_rollback(self):
        # Rank 3 joins standby->active but is never adopted (static
        # baseline: joins are ignored), so it owns nothing when its host
        # dies: the live state is intact and no rollback must happen.
        rep = _fail_run(
            lb="off",
            events=((0.01, "join", 3), (0.05, "fail", 3)),
            inactive=(3,),
        )
        # Standby rank 3 never holds data under the static baseline, so
        # the run matches a plain 3-active-rank static run's values.
        rep0 = _baseline_run(lb="off", p=4)
        assert rep.num_rollbacks == 0
        assert rep.membership_events == 2
        assert np.array_equal(rep.values, rep0.values)

    def test_refresh_does_not_double_checkpoint(self):
        # interval:1 fires at every non-final boundary (19 of them for 20
        # iterations) plus the bootstrap epoch = 20.  The redundancy
        # refresh after the data-less failure must substitute for — not
        # stack on — the interval-due epoch at that same boundary.
        rep = _fail_run(
            lb="off",
            checkpoint="interval:1",
            events=((0.01, "join", 3), (0.05, "fail", 3)),
            inactive=(3,),
        )
        assert rep.num_rollbacks == 0
        assert rep.num_checkpoints == 20

    def test_dataless_failure_refreshes_epoch(self):
        # Epoch 0's ring over {0,1,2} makes empty rank 2 the replica
        # holder for data-owner rank 1.  When rank 2's host dies (losing
        # nothing), the session must re-replicate over the survivors —
        # otherwise rank 1's later failure would read as an unrecoverable
        # double failure of a ring edge even though the live state was
        # intact the whole time.
        graph = paper_mesh(800, seed=0)
        y0 = np.random.default_rng(0).uniform(0, 100, graph.num_vertices)
        trace = MembershipTrace(
            3,
            [
                MembershipEvent(0.01, "fail", 2),
                MembershipEvent(0.05, "fail", 1),
            ],
        )
        cluster = uniform_cluster(3).with_membership(trace)
        cfg = ProgramConfig(
            iterations=20,
            initial_capabilities=[0.5, 0.5, 0.0],
            checkpoint="interval:100",  # only bootstrap + refresh epochs
        )
        rep = run_program(graph, cluster, cfg, y0=y0)
        base = run_program(
            graph,
            uniform_cluster(3),
            ProgramConfig(
                iterations=20, initial_capabilities=[0.5, 0.5, 0.0]
            ),
            y0=y0,
        )
        assert rep.num_rollbacks == 1  # only the data-holder's failure
        assert np.array_equal(rep.values, base.values)
        assert rep.partition_final.sizes().tolist()[1:] == [0, 0]

    def test_driver_ignoring_next_iteration_raises(self):
        # The pre-PR-5 driving pattern (plain for-loop, no
        # next_iteration) must fail loudly after a rollback, not
        # silently skip the re-execution.
        from repro.partition.intervals import partition_list
        from repro.runtime.adaptive import AdaptiveSession

        graph = paper_mesh(300, seed=0)
        n = graph.num_vertices
        trace = MembershipTrace(3, [MembershipEvent(0.005, "fail", 1)])
        cluster = uniform_cluster(3).with_membership(trace)

        def fn(ctx):
            session = AdaptiveSession(
                ctx,
                graph,
                partition_list(n, np.ones(3)),
                total_iterations=10,
                lb="centralized",
                checkpoint="interval:2",
            )
            lo, hi = session.interval()
            local = np.arange(lo, hi, dtype=np.float64)
            (local,) = session.bootstrap_resilience((local,))
            for it in range(10):  # wrong: never calls next_iteration()
                ctx.compute(0.01)
                ctx.barrier()
                (local,) = session.maybe_rebalance(it, (local,))

        from repro.net.spmd import run_spmd as _run

        with pytest.raises(RankFailedError) as exc:
            _run(cluster, fn)
        assert any(
            isinstance(e, ResilienceError)
            and "next_iteration" in str(e)
            for e in exc.value.failures.values()
        )

    def test_fail_without_policy_is_actionable(self):
        with pytest.raises(ResilienceError, match="checkpoint policy"):
            _fail_run(checkpoint=None)

    def test_checkpoint_requires_barriers(self):
        graph = paper_mesh(400, seed=0)
        cfg = ProgramConfig(iterations=4, checkpoint="interval:2",
                            barrier_each_iteration=False)
        with pytest.raises(ConfigurationError, match="barrier_each_iteration"):
            run_program(graph, uniform_cluster(2), cfg)

    def test_report_aggregates_are_consistent(self):
        rep = _fail_run()
        assert rep.num_checkpoints == rep.rank_stats[0].num_checkpoints
        assert rep.num_rollbacks == 1
        assert rep.lost_time > 0
        assert rep.checkpoint_time > 0
        assert rep.rollback_time > 0


# ----------------------------------------------------------------------
# hypothesis: random failure times/ranks never corrupt the result


@settings(deadline=None, max_examples=12)
@given(
    seed=st.integers(0, 2**20),
    p=st.integers(2, 5),
    frac=st.floats(0.05, 0.9),
)
def test_random_failure_preserves_result(seed, p, frac):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(200, 600))
    iterations = int(rng.integers(6, 16))
    dead = int(rng.integers(0, p))
    graph = paper_mesh(n, seed=seed)
    y0 = rng.uniform(0, 100, graph.num_vertices)
    base_cfg = ProgramConfig(
        iterations=iterations, initial_capabilities="equal",
        load_balance="centralized",
    )
    rep0 = run_program(graph, uniform_cluster(p), base_cfg, y0=y0)
    t_fail = max(rep0.makespan * frac, 1e-9)
    trace = MembershipTrace(p, [MembershipEvent(t_fail, "fail", dead)])
    cfg = ProgramConfig(
        iterations=iterations, initial_capabilities="equal",
        load_balance="centralized", checkpoint="interval:3",
    )
    rep = run_program(
        graph, uniform_cluster(p).with_membership(trace), cfg, y0=y0
    )
    np.testing.assert_array_equal(rep.values, rep0.values)
    if t_fail <= rep.makespan:
        assert rep.membership_events == 1


# ----------------------------------------------------------------------
# k-successor replication: placement properties and the DSL


def _random_world(seed: int, p: int):
    """A partition + active mask pair with >= 2 active ranks."""
    rng = np.random.default_rng(seed)
    caps = rng.uniform(0.0, 1.0, size=p)
    caps[rng.integers(0, p)] = 0.0  # at least one empty interval
    if caps.sum() == 0:
        caps[0] = 1.0
    part = partition_list(int(rng.integers(p, 40 * p)), caps + 1e-12)
    active = rng.random(p) < 0.75
    active[rng.integers(0, p)] = True
    if active.sum() < 2:
        active[np.argmin(active)] = True
    return part, active


class TestReplicaPartnerPlacement:
    @settings(deadline=None, max_examples=60)
    @given(
        seed=st.integers(0, 2**20),
        p=st.integers(2, 9),
        k=st.integers(1, 4),
    )
    def test_every_data_holder_gets_k_distinct_live_replicas(
        self, seed, p, k
    ):
        part, active = _random_world(seed, p)
        partners = replica_partners(part, active, replication_factor=k)
        n_active = int(active.sum())
        expected_k = min(k, n_active - 1)
        for owner, holders in partners.items():
            assert part.size(owner) > 0
            assert len(holders) == expected_k
            assert len(set(holders)) == len(holders)  # distinct
            assert owner not in holders  # no self-replication
            assert all(active[h] for h in holders)  # all live
        # Every data-holding active rank is covered.
        for r in np.flatnonzero(active):
            if part.size(int(r)) > 0:
                assert int(r) in partners

    @settings(deadline=None, max_examples=40)
    @given(seed=st.integers(0, 2**20), p=st.integers(2, 9))
    def test_k1_matches_the_classic_ring(self, seed, p):
        part, active = _random_world(seed, p)
        singles = replica_partners(part, active, replication_factor=1)
        ring = ring_partners(part, active)
        assert ring == {owner: h[0] for owner, h in singles.items()}

    @settings(deadline=None, max_examples=40)
    @given(
        seed=st.integers(0, 2**20),
        p=st.integers(3, 9),
        k=st.integers(1, 3),
    )
    def test_shrinking_re_replicates_orphaned_slabs(self, seed, p, k):
        # Remove one active rank; recomputing placement over the shrunken
        # set must re-home every orphaned holder assignment onto live
        # ranks only — no dangling references to the removed machine.
        part, active = _random_world(seed, p)
        if active.sum() < 3:
            return
        removed = int(np.flatnonzero(active)[0])
        shrunk = active.copy()
        shrunk[removed] = False
        partners = replica_partners(part, shrunk, replication_factor=k)
        for owner, holders in partners.items():
            assert owner != removed
            assert removed not in holders
            assert all(shrunk[h] for h in holders)

    def test_k_is_capped_by_the_active_set(self):
        part = partition_list(90, [1 / 3, 1 / 3, 1 / 3])
        partners = replica_partners(
            part, np.ones(3, dtype=bool), replication_factor=10
        )
        assert all(len(h) == 2 for h in partners.values())

    def test_successors_walk_the_ring_in_order(self):
        part = partition_list(100, [0.25, 0.25, 0.25, 0.25])
        partners = replica_partners(
            part, np.ones(4, dtype=bool), replication_factor=2
        )
        assert partners == {
            0: (1, 2), 1: (2, 3), 2: (3, 0), 3: (0, 1)
        }

    def test_rejects_nonpositive_factor(self):
        part = partition_list(50, [0.5, 0.5])
        with pytest.raises(ResilienceError, match="replication_factor"):
            replica_partners(part, np.ones(2, bool), replication_factor=0)


class TestReplicationDSL:
    def test_interval_with_replication_suffix(self):
        policy = parse_checkpoint_policy("interval:4:r2")
        assert isinstance(policy, IntervalCheckpoint)
        assert policy.k == 4
        assert policy.replication_factor == 2

    def test_cost_with_replication_suffix(self):
        policy = parse_checkpoint_policy("cost:0.5:r3")
        assert isinstance(policy, CostModelCheckpoint)
        assert policy.replication_factor == 3

    def test_default_replication_is_one(self):
        assert parse_checkpoint_policy("interval:4").replication_factor == 1

    def test_malformed_suffix_is_actionable(self):
        with pytest.raises(ResilienceError, match="r2"):
            parse_checkpoint_policy("interval:4:x2")
        with pytest.raises(ResilienceError, match="r2"):
            parse_checkpoint_policy("interval:4:r")
        with pytest.raises(ResilienceError, match="too many"):
            parse_checkpoint_policy("interval:4:r2:r3")

    def test_zero_replication_rejected(self):
        with pytest.raises(ResilienceError, match="replication_factor"):
            parse_checkpoint_policy("interval:4:r0")

    @pytest.mark.parametrize("spec", [
        "interval:4", "interval:1:r2", "cost:50", "cost:0.125:r3",
    ])
    def test_format_round_trips(self, spec):
        policy = parse_checkpoint_policy(spec)
        assert format_checkpoint_policy(policy) == spec
        assert parse_checkpoint_policy(format_checkpoint_policy(policy)) == policy

    def test_program_config_replication_override(self):
        cfg = ProgramConfig(checkpoint="interval:4", replication_factor=2)
        assert cfg.checkpoint.replication_factor == 2
        # The override wins over the DSL suffix.
        cfg = ProgramConfig(checkpoint="interval:4:r3", replication_factor=2)
        assert cfg.checkpoint.replication_factor == 2

    def test_replication_without_checkpoint_rejected(self):
        with pytest.raises(ConfigurationError, match="checkpoint policy"):
            ProgramConfig(replication_factor=2)

    def test_nonpositive_replication_rejected(self):
        with pytest.raises(ConfigurationError, match="replication_factor"):
            ProgramConfig(checkpoint="interval:4", replication_factor=0)


class TestKSuccessorRecovery:
    """End-to-end: k correlated failures per ring neighborhood."""

    _edge = ((0.03, "fail", 1), (0.03, "fail", 2))

    def test_ring_edge_double_failure_is_unrecoverable_at_k1(self):
        # Pinned: the k=1 correlated-failure limit stays a diagnosed
        # ResilienceError, not a crash and not silent corruption.
        with pytest.raises(RankFailedError) as exc:
            _fail_run(events=self._edge, checkpoint="interval:2")
        errors = list(exc.value.failures.values())
        assert errors and all(
            isinstance(e, ResilienceError) for e in errors
        )
        assert any("replication factor" in str(e) for e in errors)

    def test_ring_edge_double_failure_recovers_at_k2(self):
        rep = _fail_run(events=self._edge, checkpoint="interval:2:r2")
        rep0 = _baseline_run()
        assert np.array_equal(rep.values, rep0.values)
        assert rep.num_rollbacks >= 1
        sizes = rep.partition_final.sizes()
        assert sizes[1] == 0 and sizes[2] == 0

    def test_triple_failure_needs_k3(self):
        triple = ((0.03, "fail", 1), (0.03, "fail", 2), (0.03, "fail", 3))
        with pytest.raises(RankFailedError):
            _fail_run(p=5, events=triple, checkpoint="interval:2:r2")
        rep = _fail_run(p=5, events=triple, checkpoint="interval:2:r3")
        rep0 = _baseline_run(p=5)
        assert np.array_equal(rep.values, rep0.values)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_k2_recovery_is_backend_identical(self, backend):
        rep = _fail_run(
            events=self._edge, checkpoint="interval:2:r2", backend=backend
        )
        rep0 = _fail_run(events=self._edge, checkpoint="interval:2:r2")
        assert rep.makespan == rep0.makespan
        assert np.array_equal(rep.values, rep0.values)

    def test_replication_cost_scales_with_k(self):
        part = partition_list(4000, [0.25, 0.25, 0.25, 0.25])
        net = PointToPointNetwork()
        costs = [
            estimate_checkpoint_cost(
                net, part, np.ones(4, bool), 8, replication_factor=k
            )
            for k in (1, 2, 3)
        ]
        assert costs[0] < costs[1] < costs[2]

    def test_higher_k_costs_more_wall_time(self):
        r1 = _fail_run(events=(), checkpoint="interval:2")
        r3 = _fail_run(events=(), checkpoint="interval:2:r3")
        assert r3.checkpoint_time > r1.checkpoint_time
        assert r3.num_checkpoints == r1.num_checkpoints


# ----------------------------------------------------------------------
# scenario builders and the experiment hook


class TestResilienceScenarios:
    def test_scenarios_build(self):
        from repro.apps.workloads import RESILIENCE_SCENARIOS, resilient_cluster

        for scenario in RESILIENCE_SCENARIOS:
            cluster = resilient_cluster(4, scenario, 10.0)
            assert cluster.membership is not None
            assert cluster.membership.has_failures

    def test_unknown_scenario(self):
        from repro.apps.workloads import resilient_cluster

        with pytest.raises(ValueError, match="unknown resilience scenario"):
            resilient_cluster(4, "meteor-strike", 10.0)

    def test_repeated_failures_needs_three(self):
        from repro.apps.workloads import resilient_cluster

        with pytest.raises(ValueError, match="p >= 3"):
            resilient_cluster(2, "repeated-failures", 10.0)

    def test_experiment_registered(self):
        from repro.experiments.registry import discover, get

        discover()
        exp = get("scale-resilience")
        assert "policy" in exp.grid
        assert "cost" in exp.grid["policy"]


# ----------------------------------------------------------------------
# Unified replication capping (effective_replication_factor)


class TestReplicationCapping:
    """One capping rule, shared by partners/cost/checkpoint/config."""

    def _fresh_warnings(self):
        import warnings

        return warnings.catch_warnings()

    def test_no_cap_passthrough(self):
        from repro.runtime.resilience import effective_replication_factor

        assert effective_replication_factor(2, 5) == 2
        assert effective_replication_factor(4, 5) == 4

    def test_cap_warns_with_resilience_warning(self):
        from repro.errors import ResilienceWarning
        from repro.runtime.resilience import effective_replication_factor

        with pytest.warns(ResilienceWarning, match="capped to 2"):
            assert effective_replication_factor(5, 3) == 2

    def test_cap_echoed_once_per_process(self):
        import warnings

        from repro.errors import ResilienceWarning
        from repro.runtime.resilience import effective_replication_factor

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            effective_replication_factor(9, 4)
            effective_replication_factor(9, 4)
        ours = [w for w in caught if issubclass(w.category, ResilienceWarning)]
        assert len(ours) == 1  # "default" filter dedups the repeat

    def test_invalid_inputs_raise(self):
        from repro.runtime.resilience import effective_replication_factor

        with pytest.raises(ResilienceError, match=">= 1"):
            effective_replication_factor(0, 4)
        with pytest.raises(ResilienceError, match="num_active"):
            effective_replication_factor(1, -1)

    def test_single_active_rank_caps_to_zero(self):
        from repro.errors import ResilienceWarning
        from repro.runtime.resilience import effective_replication_factor

        with pytest.warns(ResilienceWarning):
            assert effective_replication_factor(1, 1) == 0

    def test_partners_cost_and_checkpoint_agree(self, recwarn):
        """The three consumers cap identically: k=10 at 3 actives ≡ k=2."""
        from repro.runtime.resilience import effective_replication_factor

        part = partition_list(90, np.ones(3))
        active = np.ones(3, dtype=bool)
        capped = replica_partners(part, active, replication_factor=10)
        explicit = replica_partners(part, active, replication_factor=2)
        assert capped == explicit

        net = PointToPointNetwork()
        cost_capped = estimate_checkpoint_cost(
            net, part, active, 8, replication_factor=10
        )
        cost_explicit = estimate_checkpoint_cost(
            net, part, active, 8, replication_factor=2
        )
        assert cost_capped == cost_explicit

        def fn(ctx):
            lo, hi = part.interval(ctx.rank)
            local = np.arange(lo, hi, dtype=np.float64)
            cp = take_checkpoint(
                ctx, part, (local,), active,
                next_iteration=0, epoch=0, replication_factor=10,
            )
            return cp.partners

        res = run_spmd(uniform_cluster(3), fn)
        assert res.values[0] == explicit
        assert effective_replication_factor(2, 3) == 2  # sanity: uncapped

    def test_run_program_warns_on_capped_replication(self, tiny_paper_mesh):
        from repro.errors import ResilienceWarning

        y0 = np.random.default_rng(2).uniform(0, 10, 500)
        with pytest.warns(ResilienceWarning, match="capped"):
            report = run_program(
                tiny_paper_mesh,
                uniform_cluster(3),
                ProgramConfig(
                    iterations=4,
                    checkpoint="interval:2",
                    replication_factor=10,
                ),
                y0=y0,
            )
        assert report.num_checkpoints >= 1


class TestNormalizePartnersValidation:
    def test_scalar_and_sequence_forms(self):
        from repro.runtime.resilience import normalize_partners

        assert normalize_partners({0: 1, 1: (2, 0)}) == {0: (1,), 1: (2, 0)}

    def test_self_replication_rejected(self):
        from repro.runtime.resilience import normalize_partners

        with pytest.raises(ResilienceError, match="replicates to itself"):
            normalize_partners({2: (2,)})

    def test_duplicate_holders_rejected(self):
        from repro.runtime.resilience import normalize_partners

        with pytest.raises(ResilienceError, match="duplicate holders"):
            normalize_partners({0: (1, 1)})
