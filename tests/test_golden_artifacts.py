"""Golden-artifact regression tests (ISSUE 2 satellite).

Re-derives the *structural* outputs of a small ``repro bench run`` — ghost
counts, send volumes, message counts, remap decisions — and compares them
against the committed fixture ``tests/golden/schedule_semantics.json``, so
schedule semantics cannot silently drift under refactors.  Timings are
deliberately excluded: only facts that are bit-deterministic are pinned.

If a semantics change is *intentional*, regenerate the fixture with
``PYTHONPATH=src python tools/make_golden.py`` and review the diff.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

GOLDEN = Path(__file__).parent / "golden" / "schedule_semantics.json"
GOLDEN_TRACE = Path(__file__).parent / "golden" / "chrome_trace.json"
TOOLS = Path(__file__).parent.parent / "tools"


@pytest.fixture(scope="module")
def current():
    sys.path.insert(0, str(TOOLS))
    try:
        from make_golden import build_golden
    finally:
        sys.path.remove(str(TOOLS))
    return build_golden()


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text(encoding="utf-8"))


def test_scale_epoch_structural_facts_match(current, golden):
    got = current["scale_epoch_structural"]
    want = golden["scale_epoch_structural"]
    assert [run["params"] for run in got] == [run["params"] for run in want]
    for g, w in zip(got, want):
        assert g["structural"] == w["structural"], g["params"]


def test_remap_decisions_match(current, golden):
    assert current["remap_decisions"] == golden["remap_decisions"]


def test_transfer_plan_matches(current, golden):
    """The packed-exchange plan for the paper's Fig. 5 remap is pinned:
    slab boundaries, per-peer message count, and packed wire sizes."""
    assert current["transfer_plan"] == golden["transfer_plan"]


def test_elastic_transfer_plan_matches(current, golden):
    """The elastic drain plan — repartitioning the SUN4 pool onto a
    shrunk active set, the departing rank's block draining out — is
    pinned the same way (ISSUE 4 satellite)."""
    assert current["elastic_transfer_plan"] == golden["elastic_transfer_plan"]
    # Sanity: the departed rank (ws 1) sends everything and receives
    # nothing in the pinned plan.
    transfers = golden["elastic_transfer_plan"]["transfers"]
    assert any(src == 1 for src, _, _, _ in transfers)
    assert all(dest != 1 for _, dest, _, _ in transfers)


def test_elastic_run_decisions_match(current, golden):
    """End-to-end elastic run (join adopted + departure drained): remap
    count, event count, and the final interval sizes are pinned."""
    assert current["elastic_run"] == golden["elastic_run"]
    assert golden["elastic_run"]["membership_events"] == 2
    assert golden["elastic_run"]["final_sizes"][0] == 0


def test_resilience_run_decisions_match(current, golden):
    """End-to-end failure recovery (unannounced fail + rollback to the
    interval:4 epoch): checkpoint/rollback counts and the surviving
    interval sizes are pinned (ISSUE 5)."""
    assert current["resilience_run"] == golden["resilience_run"]
    assert golden["resilience_run"]["num_rollbacks"] == 1
    # The dead rank (ws 1) ends with nothing.
    assert golden["resilience_run"]["final_sizes"][1] == 0


def test_chrome_trace_fixture_matches():
    """The exported Chrome trace of a small traced run is pinned byte for
    byte (virtual timebase, host wall clocks stripped): span nesting,
    per-rank ``seq`` order, and every virtual timestamp are schedule
    semantics too (ISSUE 10)."""
    sys.path.insert(0, str(TOOLS))
    try:
        from make_golden import build_golden_trace
    finally:
        sys.path.remove(str(TOOLS))
    got = build_golden_trace()
    want = json.loads(GOLDEN_TRACE.read_text(encoding="utf-8"))
    assert got["metadata"] == want["metadata"]
    assert got["traceEvents"] == want["traceEvents"]
    # The fixture is a valid repro export: it round-trips through the
    # loader (what `repro trace summary` consumes).
    from repro.obs import load_chrome_trace

    log = load_chrome_trace(str(GOLDEN_TRACE))
    kinds = {e.kind for e in log.spans()}
    assert {"program", "epoch", "inspector", "executor", "checkpoint"} <= kinds


def test_artifact_schema_still_validates():
    """The bench artifact produced by the scale family passes the normative
    schema check (schema-versioned results are a public contract)."""
    from repro.experiments.artifacts import validate_artifact
    from repro.experiments.runner import run_experiment

    artifact, _ = run_experiment(
        "scale-epoch",
        quick=True,
        overrides={"tier": "10k", "backend": "vectorized"},
        results_dir=None,
    )
    validate_artifact(artifact)
    assert artifact["experiment"] == "scale-epoch"
    assert all(run["wall_s"] >= 0 for run in artifact["runs"])
