"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.vertices == 4000
        assert args.strategy == "sort2"
        assert args.load_balance == "off"

    def test_run_load_balance_forms(self):
        # Bare flag means the paper's centralized protocol.
        args = build_parser().parse_args(["run", "--load-balance"])
        assert args.load_balance == "centralized"
        args = build_parser().parse_args(
            ["run", "--load-balance", "distributed"]
        )
        assert args.load_balance == "distributed"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--load-balance", "magic"])

    def test_run_rejects_bad_workstations(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workstations", "9"])

    def test_run_rejects_bad_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--strategy", "magic"])

    def test_mcr_requires_vectors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mcr"])

    def test_run_inspector_mode_forms(self):
        args = build_parser().parse_args(["run"])
        assert args.inspector_mode == "full"
        args = build_parser().parse_args(
            ["run", "--inspector-mode", "incremental"]
        )
        assert args.inspector_mode == "incremental"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--inspector-mode", "magic"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "STANCE" in out

    def test_run_verified(self, capsys):
        rc = main([
            "run", "--vertices", "400", "--iterations", "8",
            "--workstations", "2", "--verify",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verified against sequential oracle" in out
        assert "efficiency" in out

    def test_run_with_load_balance(self, capsys):
        rc = main([
            "run", "--vertices", "400", "--iterations", "20",
            "--workstations", "3", "--load-balance",
            "--competing-load", "2.0", "--verify",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "strategy: centralized" in out
        assert "remaps:" in out

    def test_run_with_distributed_load_balance(self, capsys):
        rc = main([
            "run", "--vertices", "400", "--iterations", "20",
            "--workstations", "3", "--load-balance", "distributed",
            "--competing-load", "2.0", "--verify",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "strategy: distributed" in out
        assert "remaps:" in out

    def test_run_with_membership(self, capsys):
        rc = main([
            "run", "--vertices", "400", "--iterations", "12",
            "--workstations", "3", "--load-balance",
            "--membership", "leave:1@0.02", "--verify",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "membership: 1 event(s) applied" in out
        assert "final data on ranks [0, 2]" in out
        assert "verified against sequential oracle" in out

    def test_run_with_standby_join_membership(self, capsys):
        rc = main([
            "run", "--vertices", "400", "--iterations", "12",
            "--workstations", "3", "--load-balance",
            "--membership", "standby:2, join:2@0.001", "--verify",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "membership: 1 event(s) applied" in out
        assert "final data on ranks [0, 1, 2]" in out

    def test_run_rejects_bad_membership_spec(self, capsys):
        rc = main([
            "run", "--vertices", "200", "--iterations", "4",
            "--workstations", "2", "--membership", "explode:0@1",
        ])
        assert rc == 2
        assert "bad membership spec" in capsys.readouterr().err

    def test_orderings(self, capsys):
        rc = main(["orderings", "--vertices", "300", "--parts", "2", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rcb" in out and "cut@4" in out

    def test_mcr_paper_example(self, capsys):
        rc = main([
            "mcr",
            "--old", "0.27", "0.18", "0.34", "0.07", "0.14",
            "--new", "0.10", "0.13", "0.29", "0.24", "0.24",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[0, 3, 1, 2, 4]" in out

    def test_mcr_length_mismatch(self, capsys):
        rc = main(["mcr", "--old", "0.5", "0.5", "--new", "1.0"])
        assert rc == 2

    def test_run_backend_flag(self, capsys):
        rc = main([
            "run", "--vertices", "300", "--iterations", "5",
            "--workstations", "2", "--backend", "reference", "--verify",
        ])
        assert rc == 0
        assert "verified against sequential oracle" in capsys.readouterr().out

    def test_run_incremental_inspector_mode(self, capsys):
        rc = main([
            "run", "--vertices", "400", "--iterations", "25",
            "--workstations", "3", "--load-balance",
            "--inspector-mode", "incremental", "--verify",
        ])
        assert rc == 0
        assert "verified against sequential oracle" in capsys.readouterr().out


class TestBenchGlobs:
    def test_bench_run_glob(self, capsys, tmp_path):
        rc = main([
            "bench", "run", "table1*", "--quick",
            "--results-dir", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert (tmp_path / "table1-quick.json").exists()

    def test_bench_run_glob_no_match(self, capsys, tmp_path):
        rc = main([
            "bench", "run", "no-such-*", "--results-dir", str(tmp_path),
        ])
        assert rc == 2
        assert "no experiment matches" in capsys.readouterr().err

    def test_bench_run_scale_quick(self, capsys, tmp_path):
        rc = main([
            "bench", "run", "scale-epoch", "--quick",
            "--set", 'tier="10k"',
            "--results-dir", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend=vectorized" in out and "backend=reference" in out
        assert (tmp_path / "scale-epoch-quick.json").exists()

    def test_bench_run_profile(self, capsys, tmp_path):
        rc = main([
            "bench", "run", "table1", "--quick", "--profile",
            "--results-dir", str(tmp_path),
        ])
        assert rc == 0
        err = capsys.readouterr().err
        pstats_path = tmp_path / "profiles" / "table1.pstats"
        assert pstats_path.exists() and pstats_path.stat().st_size > 0
        assert "cumulative" in err  # top-20 summary printed to stderr
        assert str(pstats_path) in err
        # The dump is a loadable pstats file.
        import pstats

        stats = pstats.Stats(str(pstats_path))
        assert stats.total_calls > 0


class TestRunReplicationFlag:
    def test_replication_requires_checkpoint(self, capsys):
        rc = main([
            "run", "--vertices", "200", "--iterations", "4",
            "--workstations", "3", "--replication", "2",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "replication_factor requires a checkpoint policy" in err

    def test_replication_rejects_zero(self, capsys):
        rc = main([
            "run", "--vertices", "200", "--iterations", "4",
            "--workstations", "3", "--checkpoint", "interval:2",
            "--replication", "0",
        ])
        assert rc == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_replication_overrides_policy_suffix(self, capsys):
        rc = main([
            "run", "--vertices", "400", "--iterations", "8",
            "--workstations", "3", "--load-balance",
            "--checkpoint", "interval:2:r3", "--replication", "2",
            "--verify",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "checkpoint: interval:2:r2" in out


class TestFuzzCLI:
    # A quiet inline scenario: no churn, no failures, tiny graph.
    QUIET = (
        '{"schema_version": 1, "seed": 1, "vertices": 64, '
        '"workstations": 2, "iterations": 2}'
    )
    # k=1 ring-edge double failure mislabeled "recovered": the oracle
    # must flag it, and the shrinker has something real to chew on.
    FAILING = (
        '{"schema_version": 1, "seed": 5, "vertices": 96, '
        '"workstations": 3, "iterations": 6, '
        '"membership": "fail:1@0.005, fail:2@0.005", '
        '"checkpoint": "interval:2", "expect": "recovered"}'
    )

    def test_rejects_negative_seed(self, capsys):
        rc = main(["fuzz", "run", "--seed", "-3", "--budget", "2"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "non-negative" in err

    def test_rejects_zero_budget(self, capsys):
        rc = main(["fuzz", "run", "--seed", "0", "--budget", "0"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "budget" in err and ">= 1" in err

    def test_rejects_unknown_invariant(self, capsys):
        rc = main([
            "fuzz", "run", "--seed", "0", "--budget", "1",
            "--invariant", "no-desink",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        # The message must name the valid choices, not just complain.
        assert "known invariants" in err
        assert "no-desync" in err

    def test_rejects_bad_scenario_spec(self, capsys):
        rc = main(["fuzz", "run", "--scenario", "no/such/file.json"])
        assert rc == 2
        assert "neither an inline JSON" in capsys.readouterr().err

    def test_shrink_without_target_is_an_error(self, capsys):
        rc = main(["fuzz", "shrink"])
        assert rc == 2
        assert "needs a target" in capsys.readouterr().err

    def test_corpus_rejects_empty_dir(self, capsys, tmp_path):
        rc = main(["fuzz", "corpus", "--dir", str(tmp_path)])
        assert rc == 2
        assert "no scenario JSON files" in capsys.readouterr().err

    def test_run_inline_scenario_passes(self, capsys):
        rc = main(["fuzz", "run", "--scenario", self.QUIET])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "1 scenario(s), 0 failure(s)" in out

    def test_failing_scenario_prints_reproducer(self, capsys):
        rc = main([
            "fuzz", "run", "--scenario", self.FAILING,
            "--invariant", "recoverable",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "expects a recovery" in out
        assert "python -m repro fuzz run --scenario '" in out

    def test_reproducer_smoke_shrink_then_replay(self, capsys, tmp_path):
        # End-to-end: shrink the failing scenario, then replay the
        # written reproducer through the same CLI and get the same
        # verdict (exit 1, still failing).
        out_file = tmp_path / "shrunk.json"
        rc = main([
            "fuzz", "shrink", "--scenario", self.FAILING,
            "--invariant", "recoverable", "--max-attempts", "40",
            "-o", str(out_file),
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "minimal reproducer:" in out
        assert out_file.exists()
        rc = main([
            "fuzz", "run", "--scenario", str(out_file),
            "--invariant", "recoverable",
        ])
        assert rc == 1
        assert "1 failure(s)" in capsys.readouterr().out


class TestBenchGlobOverrideValidation:
    def test_glob_override_fails_fast_before_running(self, capsys, tmp_path):
        # "family" is an axis of scale-epoch/scale-generate but not of
        # scale-adaptive: the whole glob run must refuse up front, before
        # any experiment burns time or writes an artifact.
        rc = main([
            "bench", "run", "scale-*", "--set", 'family="grid"',
            "--results-dir", str(tmp_path),
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "scale-adaptive" in err and "family" in err
        assert list(tmp_path.iterdir()) == []
