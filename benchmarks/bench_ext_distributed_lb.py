"""Extension bench: centralized vs distributed load balancing.

Sec. 3.5 says centralized balancing suits small clusters and names
distributed strategies as future work.  This bench measures the per-check
cost of both protocols as the cluster grows, on a multicast-capable
Ethernet and on a unicast-only network — showing where the distributed
protocol wins (no controller serialization, O(p) multicasts) and where it
loses (O(p^2) unicast fallback).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import emit_table
from repro.net.cluster import uniform_cluster
from repro.net.network import PointToPointNetwork, SharedEthernet
from repro.net.spmd import run_spmd
from repro.partition.intervals import partition_list
from repro.runtime.adaptive import LoadBalanceConfig, make_strategy

SIZES = (4, 8, 16)
N_CHECKS = 5


def check_cost(p: int, *, style: str, multicast: bool) -> float:
    factory = SharedEthernet if multicast else PointToPointNetwork
    cluster = uniform_cluster(p, network_factory=factory)
    part = partition_list(50_000, np.ones(p))
    config = LoadBalanceConfig(style=style)
    strategy = make_strategy(config)
    times = 1e-4 * (1.0 + 0.01 * np.arange(p))  # nearly balanced: no remap

    def fn(ctx):
        t0 = ctx.clock
        for _ in range(N_CHECKS):
            strategy.check(ctx, part, times[ctx.rank], 100, config)
            ctx.barrier()
        return (ctx.clock - t0) / N_CHECKS

    return run_spmd(cluster, fn).makespan / N_CHECKS


@pytest.mark.parametrize("style", ["centralized", "distributed"])
def test_check_benchmark(benchmark, style):
    benchmark.pedantic(
        check_cost, args=(8,), kwargs={"style": style, "multicast": True},
        rounds=1, iterations=1,
    )


def test_distributed_lb_report(benchmark):
    def compute():
        rows = {}
        for p in SIZES:
            rows[p] = (
                check_cost(p, style="centralized", multicast=True),
                check_cost(p, style="distributed", multicast=True),
                check_cost(p, style="centralized", multicast=False),
                check_cost(p, style="distributed", multicast=False),
            )
        return rows

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [p, ce, de, cp, dp] for p, (ce, de, cp, dp) in results.items()
    ]
    emit_table(
        "ext_distributed_lb",
        ["Processors", "central/eth", "distrib/eth", "central/p2p",
         "distrib/p2p"],
        rows,
        title="Extension: load-balance check cost per protocol (virtual s)",
        paper_note="Sec. 3.5 future work; distributed wins with multicast, "
                   "loses at scale without it",
        float_fmt="{:.5f}",
    )
    for p, (ce, de, cp, dp) in results.items():
        # With multicast the distributed check is competitive (within 2x).
        assert de < 2.0 * ce
    # Without multicast the distributed protocol degrades faster with p
    # than the centralized one.
    growth_d = results[16][3] / results[4][3]
    growth_c = results[16][2] / results[4][2]
    assert growth_d > growth_c
