"""Table 2: average cost of data remapping, with and without MCR.

Paper (floats, 100 random samples, SUN4 + Ethernet + P4):

    size      | 1,2,3 MCR / no  | 1,2,3,4 MCR / no | 1..5 MCR / no
    512       | 0.0037 / 0.0042 | 0.0041 / 0.0043  | 0.0045 / 0.0047
    2048      | 0.0047 / 0.0052 | 0.0044 / 0.0056  | 0.0054 / 0.006
    16384     | 0.026  / 0.031  | 0.0234 / 0.0309  | 0.0229 / 0.0319
    131072    | 0.2448 / 0.2594 | 0.1816 / 0.2440  | 0.184  / 0.2584
    1048576   | 1.8417 / 1.9646 | 1.4691 / 1.9444  | 1.4294 / 2.0691

Shape to preserve: MCR lowers the average remap cost at every size, the
advantage grows with processor count, and total remap time stays small.

Measurement logic lives in :mod:`repro.experiments.catalog` (experiment
``table2``); this module keeps the pytest shape assertions.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import emit_table
from repro.apps.workloads import full_scale
from repro.experiments.catalog import average_remap_costs

DATA_SIZES = (512, 2048, 16_384, 131_072) + ((1_048_576,) if full_scale() else ())
WS_SETS = (3, 4, 5)
N_SAMPLES = 100 if full_scale() else 8


def average_costs(n: int, p: int, rng: np.random.Generator) -> tuple[float, float]:
    """(with MCR, without MCR) average remap cost over random samples."""
    return average_remap_costs(n, p, rng, samples=N_SAMPLES)


@pytest.mark.parametrize("p", WS_SETS)
def test_mcr_beats_identity_on_average(benchmark, p, rng):
    w, wo = benchmark.pedantic(
        average_costs, args=(16_384, p, rng), rounds=1, iterations=1
    )
    assert w < wo  # MCR reduces average remap cost (the Table 2 claim)


def test_table2_report(benchmark, rng):
    def compute():
        results: dict[tuple[int, int], tuple[float, float]] = {}
        for n in DATA_SIZES:
            for p in WS_SETS:
                results[(n, p)] = average_costs(n, p, rng)
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    headers = ["Data size"] + [
        f"1..{p} {tag}" for p in WS_SETS for tag in ("MCR", "no-MCR")
    ]
    rows = []
    for n in DATA_SIZES:
        row: list[object] = [n]
        for p in WS_SETS:
            w, wo = results[(n, p)]
            row += [w, wo]
        rows.append(row)
    emit_table(
        "table2_remap_cost",
        headers,
        rows,
        title=f"Table 2: avg remap cost over {N_SAMPLES} samples (virtual s)",
        paper_note="MCR < no-MCR everywhere; gap widens with p and size",
    )
    # Shape assertions on the largest size, where the effect is clearest.
    big = DATA_SIZES[-1]
    for p in WS_SETS:
        w, wo = results[(big, p)]
        assert w <= wo * 1.02  # MCR never meaningfully worse
    # The MCR advantage at p=5 exceeds the advantage at p=3.
    adv3 = results[(big, 3)][1] - results[(big, 3)][0]
    adv5 = results[(big, 5)][1] - results[(big, 5)][0]
    assert adv5 >= adv3 * 0.5  # at least comparable; typically larger
    # Costs grow with data size.
    for p in WS_SETS:
        series = [results[(n, p)][0] for n in DATA_SIZES]
        assert series[-1] > series[0]


if __name__ == "__main__":  # thin shim: run through the unified harness
    import sys

    from repro.cli import main

    sys.exit(main(["bench", "run", "table2"] + sys.argv[1:]))
