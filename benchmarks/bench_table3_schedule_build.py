"""Table 3: time to build communication schedules, by strategy.

Paper (30,269-vertex mesh, RSB indexing, SUN4 + Ethernet):

    Workstations    | 1,2   | 1,2,3 | 1..4  | 1..5
    Sort1           | 0.247 | 0.171 | 0.136 | 0.131
    Sort2           | 0.236 | 0.169 | 0.130 | 0.125
    Simple Strategy | 0.2   | 0.188 | 0.176 | 0.290

Shapes to preserve: the sorting strategies get *cheaper* as processors are
added (per-rank data shrinks) while the simple strategy gets *worse*
(message setups grow), with sort2 <= sort1 throughout and a crossover in
between.

Measurement logic lives in :mod:`repro.experiments.catalog` (experiment
``table3``); this module keeps the pytest shape assertions.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_table
from repro.experiments.catalog import schedule_build_time as build_time
from repro.net.cluster import sun4_cluster
from repro.partition.intervals import partition_list
from repro.partition.rcb import RCBOrdering
from repro.runtime.inspector import run_inspector

WS_SETS = (2, 3, 4, 5)
STRATEGIES = ("sort1", "sort2", "simple")
PAPER = {
    "sort1": (0.247, 0.171, 0.136, 0.131),
    "sort2": (0.236, 0.169, 0.130, 0.125),
    "simple": (0.2, 0.188, 0.176, 0.290),
}


@pytest.fixture(scope="module")
def ordered_graph(workload):
    g = workload.graph
    return g.permute(RCBOrdering()(g))


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_schedule_build_benchmark(benchmark, ordered_graph, strategy):
    """Host-time benchmark of schedule construction (3 workstations)."""
    part = partition_list(ordered_graph.num_vertices, sun4_cluster(3).speeds)

    def build():
        if strategy == "simple":
            # Host-time the collective build through the SPMD runner.
            return build_time(ordered_graph, 3, "simple")
        return run_inspector(ordered_graph, part, 0, strategy=strategy)

    benchmark(build)


def test_table3_report(benchmark, ordered_graph):
    times = benchmark.pedantic(
        lambda: {
            s: [build_time(ordered_graph, p, s) for p in WS_SETS]
            for s in STRATEGIES
        },
        rounds=1, iterations=1,
    )
    rows = [
        [s] + times[s] + [f"paper: {PAPER[s]}"]
        for s in STRATEGIES
    ]
    emit_table(
        "table3_schedule_build",
        ["Strategy"] + [f"1..{p}" for p in WS_SETS] + ["paper (s)"],
        rows,
        title="Table 3: schedule construction time (virtual s)",
        paper_note="sorting strategies decrease with p; simple increases",
    )
    s1, s2, sim = times["sort1"], times["sort2"], times["simple"]
    # Sorting strategies trend downward with p (small non-monotonic steps
    # can appear when the added workstation is much slower than the pool).
    assert s1[-1] < s1[0] * 0.9
    assert s2[-1] < s2[0] * 0.9
    assert all(b < a * 1.10 for a, b in zip(s1, s1[1:]))
    assert all(b < a * 1.10 for a, b in zip(s2, s2[1:]))
    # sort2 never slower than sort1.
    assert all(x2 <= x1 + 1e-9 for x1, x2 in zip(s1, s2))
    # Simple strategy grows with p across the sweep.
    assert sim[-1] > sim[0]
    # Crossover: by 5 workstations the sorting strategies win.
    assert s2[-1] < sim[-1]
    assert s1[-1] < sim[-1]


if __name__ == "__main__":  # thin shim: run through the unified harness
    import sys

    from repro.cli import main

    sys.exit(main(["bench", "run", "table3"] + sys.argv[1:]))
