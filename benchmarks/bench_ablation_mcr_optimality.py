"""Ablation: MCR greedy versus the exhaustive-optimal arrangement.

The paper claims the greedy "produces good suboptimal results" (Sec. 3.4)
but gives no numbers.  This bench quantifies the optimality gap over random
capability adaptations at exhaustively checkable processor counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import emit_table
from repro.apps.workloads import random_capabilities
from repro.partition.arrangement import (
    RedistributionCostModel,
    brute_force_arrangement,
    minimize_cost_redistribution,
    overlap_elements,
    redistribution_gain,
)
from repro.partition.intervals import partition_list

PROCESSOR_COUNTS = (3, 4, 5, 6, 7)
N_ELEMENTS = 2_000
N_TRIALS = 20


def gap_stats(p: int, rng: np.random.Generator):
    cm = RedistributionCostModel(message_weight=2.0)
    ratios = []
    exact_hits = 0
    for _ in range(N_TRIALS):
        old_caps = random_capabilities(p, rng)
        new_caps = random_capabilities(p, rng)
        old = partition_list(N_ELEMENTS, old_caps)
        greedy_arr = minimize_cost_redistribution(
            np.arange(p), old_caps, new_caps, N_ELEMENTS, cost_model=cm
        )
        best_arr, best_gain = brute_force_arrangement(
            np.arange(p), old_caps, new_caps, N_ELEMENTS, cost_model=cm
        )
        greedy_gain = redistribution_gain(
            old, partition_list(N_ELEMENTS, new_caps, greedy_arr), cm
        )
        g_ov = overlap_elements(old, partition_list(N_ELEMENTS, new_caps, greedy_arr))
        b_ov = overlap_elements(old, partition_list(N_ELEMENTS, new_caps, best_arr))
        ratios.append(g_ov / max(b_ov, 1))
        if greedy_gain >= best_gain - 1e-9:
            exact_hits += 1
    return float(np.mean(ratios)), float(np.min(ratios)), exact_hits


@pytest.mark.parametrize("p", (4, 6))
def test_gap_benchmark(benchmark, p, rng):
    benchmark.pedantic(gap_stats, args=(p, rng), rounds=1, iterations=1)


def test_mcr_optimality_report(benchmark, rng):
    def compute():
        return {p: gap_stats(p, rng) for p in PROCESSOR_COUNTS}

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [p, mean, worst, f"{hits}/{N_TRIALS}"]
        for p, (mean, worst, hits) in results.items()
    ]
    emit_table(
        "ablation_mcr_optimality",
        ["Processors", "mean overlap ratio", "worst ratio", "exact optima"],
        rows,
        title=f"Ablation: MCR greedy vs brute force "
              f"({N_TRIALS} random adaptations, n={N_ELEMENTS})",
        paper_note='quantifies Sec. 3.4\'s "good suboptimal results"',
        float_fmt="{:.3f}",
    )
    for p, (mean, worst, hits) in results.items():
        assert mean > 0.9   # within 10% of optimal overlap on average
        assert worst > 0.6  # and never catastrophically bad
        assert hits >= N_TRIALS // 4  # frequently exactly optimal
