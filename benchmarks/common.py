"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section (see docs/benchmarks.md's per-experiment index).  Results are
printed AND written to ``benchmarks/results/<name>.txt`` so they survive
pytest's output capture; machine-readable JSON artifacts come from the
:mod:`repro.experiments` harness (``repro bench run <name>``).

Scale: reduced by default (minutes for the whole harness); set
``REPRO_FULL=1`` for the paper's full 30,269-vertex mesh and 500 iterations.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.utils.tables import format_table

RESULTS_DIR = Path(__file__).resolve().parent / "results"

__all__ = ["RESULTS_DIR", "emit_table"]


def emit_table(
    name: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str,
    paper_note: str = "",
    float_fmt: str = "{:.4g}",
) -> str:
    """Render, print, and persist one benchmark table."""
    text = format_table(headers, rows, title=title, float_fmt=float_fmt)
    if paper_note:
        text += f"\n\npaper reference: {paper_note}"
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print("\n" + text)
    return text
