"""Ablation: choice of one-dimensional locality transformation.

Sec. 3.1 lists RCB, inertial bisection, spectral methods, and index-based
(space-filling-curve) partitioners.  This bench scores each ordering two
ways on the paper workload: (a) the edge-cut curve of contiguous splits,
and (b) the end-to-end virtual makespan of a short program run — showing
the ordering's cut quality actually propagates to runtime.

Registered as experiment ``ablation_orderings`` in
:mod:`repro.experiments.catalog`; the method set here comes from the same
:func:`~repro.experiments.catalog.ordering_by_name` factory.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_table
from repro.experiments.catalog import ORDERING_NAMES, ordering_by_name
from repro.graph.metrics import cut_curve, mean_edge_span
from repro.net.cluster import sun4_cluster
from repro.runtime.program import ProgramConfig, run_program

METHODS = [ordering_by_name(name, seed=0) for name in ORDERING_NAMES]
PART_COUNTS = (4, 16)
RUN_ITERATIONS = 10


@pytest.mark.parametrize("method", METHODS, ids=lambda m: m.name)
def test_ordering_benchmark(benchmark, workload, method):
    perm = benchmark.pedantic(
        method, args=(workload.graph,), rounds=1, iterations=1
    )
    assert perm.size == workload.graph.num_vertices


def test_ordering_ablation_report(benchmark, workload):
    g = workload.graph

    def compute():
        out = {}
        for method in METHODS:
            perm = method(g)
            rep = run_program(
                g, sun4_cluster(4),
                ProgramConfig(iterations=RUN_ITERATIONS, ordering=method),
                y0=workload.y0,
            )
            out[method.name] = (
                mean_edge_span(g, perm),
                cut_curve(g, perm, PART_COUNTS),
                rep.makespan,
            )
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [name, span] + [curve[p] for p in PART_COUNTS] + [makespan]
        for name, (span, curve, makespan) in results.items()
    ]
    emit_table(
        "ablation_orderings",
        ["Ordering", "Mean span"] + [f"cut@{p}" for p in PART_COUNTS]
        + [f"makespan@{RUN_ITERATIONS} iters (4 ws)"],
        rows,
        title="Ablation: 1-D transformations on the paper workload",
        paper_note="Sec. 3.1's heuristic families; locality -> lower "
                   "communication -> lower makespan",
        float_fmt="{:.3f}",
    )
    rand = results["random"]
    for name, (span, curve, makespan) in results.items():
        if name == "random":
            continue
        assert span < rand[0] / 3
        assert curve[16] < rand[1][16] / 2
        # Cut quality propagates to end-to-end time.
        assert makespan < rand[2]


if __name__ == "__main__":  # thin shim: run through the unified harness
    import sys

    from repro.cli import main

    sys.exit(main(["bench", "run", "ablation_orderings"] + sys.argv[1:]))
