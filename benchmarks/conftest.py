"""Benchmark fixtures: the paper workload at harness scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.workloads import paper_workload


@pytest.fixture(scope="session")
def workload():
    """The Tables 3-5 workload (reduced scale unless REPRO_FULL=1)."""
    return paper_workload(seed=1995)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2026)
