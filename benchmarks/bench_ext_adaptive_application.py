"""Extension bench: adaptive *applications* (paper footnote 1).

A refinement hotspot sweeps the mesh, shifting computational weight every
``adapt_interval`` iterations.  Compared: keeping the initial partition
(phase B never re-runs) versus weighted repartitioning at every adaptation
(redistribute + inspector rebuild) — quantifying when re-running phase B is
worth its cost, on homogeneous and heterogeneous pools.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import emit_table
from repro.apps.adaptive_refinement import MovingHotspot, run_adaptive_application
from repro.graph.generators import paper_mesh
from repro.net.cluster import sun4_cluster, uniform_cluster

ITERATIONS = 60
ADAPT_INTERVAL = 10


@pytest.fixture(scope="module")
def adaptive_setup(workload):
    g = workload.graph
    hotspot = MovingHotspot(g, amplitude=14.0, radius_fraction=0.12,
                            n_phases=ITERATIONS // ADAPT_INTERVAL)
    return g, workload.y0, hotspot


def run_pair(g, y0, hotspot, cluster):
    kw = dict(
        iterations=ITERATIONS, adapt_interval=ADAPT_INTERVAL,
        hotspot=hotspot, y0=y0,
    )
    static = run_adaptive_application(g, cluster, repartition=False, **kw)
    adaptive = run_adaptive_application(g, cluster, repartition=True, **kw)
    return static, adaptive


def test_adaptive_app_benchmark(benchmark, adaptive_setup):
    g, y0, hotspot = adaptive_setup
    benchmark.pedantic(
        run_pair, args=(g, y0, hotspot, uniform_cluster(4)),
        rounds=1, iterations=1,
    )


def test_adaptive_application_report(benchmark, adaptive_setup):
    g, y0, hotspot = adaptive_setup

    def compute():
        out = {}
        for label, cluster in (
            ("uniform x4", uniform_cluster(4)),
            ("sun4 x4", sun4_cluster(4, ethernet=True)),
        ):
            out[label] = run_pair(g, y0, hotspot, cluster)
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for label, (static, adaptive) in results.items():
        rows.append([
            label,
            static.makespan,
            adaptive.makespan,
            static.makespan / adaptive.makespan,
            adaptive.num_repartitions,
            adaptive.repartition_time,
        ])
    emit_table(
        "ext_adaptive_application",
        ["Cluster", "static part.", "weighted repart.", "speedup",
         "reparts", "repart cost"],
        rows,
        title="Extension: adaptive application (moving refinement hotspot, "
              f"{ITERATIONS} iterations)",
        paper_note="footnote 1: phase B re-runs whenever the computational "
                   "structure adapts",
        float_fmt="{:.4f}",
    )
    for label, (static, adaptive) in results.items():
        assert adaptive.makespan < static.makespan
        assert adaptive.num_repartitions == ITERATIONS // ADAPT_INTERVAL - 1
        # Repartition cost stays a modest fraction of the run.
        assert adaptive.repartition_time < 0.35 * adaptive.makespan
