"""Table 5: adaptive environment, with and without load balancing.

Paper (competing load on workstation 1, decomposition assumes equal
capability, check after 10 iterations, 500 iterations total):

    Workstations | with LB | without LB | LB check | LB cost
    1            | 290.93  |            |          |
    1,2          | 88.96   | 166.2      | 0.005    | 0.58
    1,2,3        | 57.22   | 115.6      | 0.007    | 0.39
    1,2,3,4      | 43.52   | 92.54      | 0.008    | 0.19
    1,2,3,4,5    | 40.56   | 79.32      | 0.011    | 0.17

Shapes to preserve: load balancing roughly halves execution time; the remap
(LB) cost is on the order of a few loop iterations; the check cost is an
order of magnitude below the remap cost.

Measurement logic lives in :mod:`repro.experiments.catalog` (experiment
``table5``); this module keeps the pytest shape assertions.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import emit_table
from repro.experiments.catalog import adaptive_run
from repro.runtime.kernels import run_sequential

WS_SETS = (1, 2, 3, 4, 5)
PAPER = {
    1: (290.93, None, None, None),
    2: (88.96, 166.2, 0.005, 0.58),
    3: (57.22, 115.6, 0.007, 0.39),
    4: (43.52, 92.54, 0.008, 0.19),
    5: (40.56, 79.32, 0.011, 0.17),
}
COMPETING_LOAD = 2.0  # paper's 1-ws adaptive/static ratio implies ~2


def run_adaptive(workload, p: int, *, lb: bool):
    return adaptive_run(
        workload.graph, workload.y0, workload.iterations, p,
        lb=lb, competing_load=COMPETING_LOAD, check_interval=10,
    )


@pytest.mark.parametrize("lb", [True, False], ids=["with-lb", "without-lb"])
def test_adaptive_run_benchmark(benchmark, workload, lb):
    benchmark.pedantic(
        run_adaptive, args=(workload, 3), kwargs={"lb": lb},
        rounds=1, iterations=1,
    )


def test_table5_report(benchmark, workload):
    def compute():
        rows = {}
        for p in WS_SETS:
            with_lb = run_adaptive(workload, p, lb=True)
            without = run_adaptive(workload, p, lb=False) if p > 1 else None
            rows[p] = (with_lb, without)
        return rows

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    table_rows = []
    for p in WS_SETS:
        with_lb, without = results[p]
        stats = with_lb.rank_stats[0]
        per_check = (
            with_lb.lb_check_time / stats.num_checks if stats.num_checks else 0.0
        )
        table_rows.append([
            f"1..{p}",
            with_lb.makespan,
            without.makespan if without else float("nan"),
            per_check,
            with_lb.remap_time,
            with_lb.num_remaps,
            f"paper: {PAPER[p]}",
        ])
    emit_table(
        "table5_adaptive",
        ["Workstations", "with LB", "without LB", "check cost", "LB cost",
         "remaps", "paper (wLB, w/oLB, check, LB)"],
        table_rows,
        title=f"Table 5: adaptive environment ({workload.label}, "
              f"{workload.iterations} iterations, competing load "
              f"{COMPETING_LOAD} on ws 1)",
        paper_note="LB roughly halves time; check cost << LB cost",
        float_fmt="{:.4f}",
    )

    # Correctness first: LB never changes the computed values.
    oracle = run_sequential(workload.graph, workload.y0, workload.iterations)
    np.testing.assert_allclose(results[3][0].values, oracle, atol=1e-9)

    for p in (2, 3, 4, 5):
        with_lb, without = results[p]
        # Load balancing is a clear win...
        assert with_lb.makespan < without.makespan * 0.85
        assert with_lb.num_remaps >= 1
        # ...whose one-time cost is on the order of a few iterations...
        per_iter = without.makespan / workload.iterations
        assert with_lb.remap_time < 20 * per_iter
        # ...and whose check cost is far below the remap cost.
        stats = with_lb.rank_stats[0]
        per_check = with_lb.lb_check_time / max(stats.num_checks, 1)
        per_remap = with_lb.remap_time / max(stats.num_remaps, 1)
        assert per_check < per_remap

    # More workstations still help in the adaptive environment.
    lb_times = [results[p][0].makespan for p in WS_SETS]
    assert lb_times[0] > lb_times[1] > lb_times[2]


if __name__ == "__main__":  # thin shim: run through the unified harness
    import sys

    from repro.cli import main

    sys.exit(main(["bench", "run", "table5"] + sys.argv[1:]))
