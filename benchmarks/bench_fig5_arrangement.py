"""Figure 5 + Figs. 6/7: arrangements change redistribution cost; MCR finds
a good one.

The paper's exact instance: 100 elements, capabilities adapting from
(0.27, 0.18, 0.34, 0.07, 0.14) to (0.10, 0.13, 0.29, 0.24, 0.24).
Paper numbers: identity arrangement keeps 29 elements (5 messages); the
arrangement (P0, P3, P1, P2, P4) keeps 65 (3 messages).  Exact Hamilton
rounding of the fractional block sizes gives 31/6 and 64/5 — same shape,
and MCR recovers exactly the paper's arrangement.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit_table
from repro.partition.arrangement import (
    brute_force_arrangement,
    message_count,
    minimize_cost_redistribution,
    overlap_elements,
)
from repro.partition.intervals import partition_list

OLD_CAP = [0.27, 0.18, 0.34, 0.07, 0.14]
NEW_CAP = [0.10, 0.13, 0.29, 0.24, 0.24]
N = 100


def test_mcr_benchmark(benchmark):
    arr = benchmark(
        minimize_cost_redistribution, np.arange(5), OLD_CAP, NEW_CAP, N
    )
    np.testing.assert_array_equal(arr, [0, 3, 1, 2, 4])


def test_fig5_report(benchmark):
    def compute():
        old = partition_list(N, OLD_CAP)
        candidates = {
            "identity (P0,P1,P2,P3,P4)": np.arange(5),
            "paper (P0,P3,P1,P2,P4)": np.array([0, 3, 1, 2, 4]),
            "MCR greedy": minimize_cost_redistribution(
                np.arange(5), OLD_CAP, NEW_CAP, N
            ),
            "brute force": brute_force_arrangement(
                np.arange(5), OLD_CAP, NEW_CAP, N
            )[0],
        }
        out = {}
        for label, arr in candidates.items():
            new = partition_list(N, NEW_CAP, arr)
            out[label] = (
                arr.tolist(),
                overlap_elements(old, new),
                message_count(old, new),
            )
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [label, str(arr), ov, N - ov, msgs]
        for label, (arr, ov, msgs) in results.items()
    ]
    emit_table(
        "fig5_arrangement",
        ["Arrangement", "Order", "Overlap", "Moved", "Messages"],
        rows,
        title="Fig. 5: repartitioning arrangements on the paper's example",
        paper_note="paper reports 29/5 (identity) and 65/3 (good); exact "
                   "rounding gives 31/6 and 64/5",
    )
    ident = results["identity (P0,P1,P2,P3,P4)"]
    good = results["paper (P0,P3,P1,P2,P4)"]
    mcr = results["MCR greedy"]
    bf = results["brute force"]
    # Exact combinatorial facts under Hamilton rounding:
    assert (ident[1], ident[2]) == (31, 6)
    assert (good[1], good[2]) == (64, 5)
    # MCR recovers the paper's arrangement (and hence its numbers).
    assert mcr[0] == [0, 3, 1, 2, 4]
    # The paper's arrangement is optimal for this instance.
    assert bf[1] == good[1]
    # Shape: the good arrangement at least doubles the kept elements and
    # does not increase messages — the Sec. 3.4 claim.
    assert good[1] >= 2 * ident[1]
    assert good[2] <= ident[2]
