"""Extension bench: HPF regular redistribution vs STANCE interval remaps.

The paper positions its runtime against HPF's static distributions
(Sec. 1).  This bench quantifies the comparison on the same simulated
Ethernet: redistributing an array between HPF layouts (BLOCK <-> CYCLIC(b))
versus remapping between two capability-proportional interval partitions
with and without MCR.  Interval remaps move only boundary slabs; BLOCK ->
CYCLIC moves nearly everything with O(p^2) messages.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import emit_table
from repro.net.cluster import sun4_cluster
from repro.net.spmd import run_spmd
from repro.partition.arrangement import minimize_cost_redistribution
from repro.partition.hpf import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    hpf_transfer_summary,
    redistribute_hpf,
)
from repro.partition.intervals import partition_list
from repro.runtime.adaptive import redistribute

N = 65_536
P = 4
OLD_CAPS = np.array([0.25, 0.25, 0.25, 0.25])
NEW_CAPS = np.array([0.10, 0.30, 0.35, 0.25])


def measure_hpf(src, dst) -> tuple[float, int, int]:
    data = np.zeros(N)
    cluster = sun4_cluster(P)

    def fn(ctx):
        local = data[src.global_indices(ctx.rank)].copy()
        redistribute_hpf(ctx, src, dst, local)
        ctx.barrier()

    makespan = run_spmd(cluster, fn).makespan
    summary = hpf_transfer_summary(src, dst)
    return makespan, summary["moved_elements"], summary["messages"]


def measure_interval(use_mcr: bool) -> tuple[float, int, int]:
    from repro.partition.arrangement import (
        message_count,
        overlap_elements,
    )

    old = partition_list(N, OLD_CAPS)
    arrangement = (
        minimize_cost_redistribution(np.arange(P), OLD_CAPS, NEW_CAPS, N)
        if use_mcr
        else np.arange(P)
    )
    new = partition_list(N, NEW_CAPS, arrangement)
    data = np.zeros(N)
    cluster = sun4_cluster(P)

    def fn(ctx):
        lo, hi = old.interval(ctx.rank)
        redistribute(ctx, old, new, data[lo:hi].copy())
        ctx.barrier()

    makespan = run_spmd(cluster, fn).makespan
    return makespan, N - overlap_elements(old, new), message_count(old, new)


def test_hpf_bench(benchmark):
    src, dst = BlockDistribution(N, P), CyclicDistribution(N, P)
    benchmark.pedantic(measure_hpf, args=(src, dst), rounds=1, iterations=1)


def test_hpf_report(benchmark):
    def compute():
        return {
            "BLOCK -> CYCLIC": measure_hpf(
                BlockDistribution(N, P), CyclicDistribution(N, P)
            ),
            "BLOCK -> CYCLIC(64)": measure_hpf(
                BlockDistribution(N, P), BlockCyclicDistribution(N, P, 64)
            ),
            "CYCLIC -> CYCLIC(64)": measure_hpf(
                CyclicDistribution(N, P), BlockCyclicDistribution(N, P, 64)
            ),
            "interval remap (no MCR)": measure_interval(False),
            "interval remap (MCR)": measure_interval(True),
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [label, t, moved, msgs] for label, (t, moved, msgs) in results.items()
    ]
    emit_table(
        "ext_hpf_redistribution",
        ["Redistribution", "Time (virt s)", "moved elems", "messages"],
        rows,
        title=f"Extension: HPF regular redistribution vs interval remap "
              f"(n={N}, p={P})",
        paper_note="interval remaps move only boundary slabs; BLOCK<->CYCLIC "
                   "moves ~everything",
    )
    hpf_cost = results["BLOCK -> CYCLIC"][0]
    mcr_cost = results["interval remap (MCR)"][0]
    assert mcr_cost < hpf_cost  # the paper's representation pays off
    # MCR never worse than keeping the arrangement.
    assert results["interval remap (MCR)"][0] <= (
        results["interval remap (no MCR)"][0] * 1.02
    )
    # BLOCK->CYCLIC moves the overwhelming majority of elements.
    assert results["BLOCK -> CYCLIC"][1] > 0.7 * N
