"""Benchmark suite: one module per paper table/figure (see docs/benchmarks.md).

The measurement logic is shared with the registry-driven harness in
:mod:`repro.experiments`; these modules add pytest shape assertions."""
