"""Table 1: execution time of MinimizeCostRedistribution.

Paper (SUN4, C): p=3 -> 0.00033 s, p=5 -> 0.00049 s, p=10 -> 0.0025 s,
p=15 -> 0.0074 s, p=20 -> 0.017 s.  Shape to preserve: superlinear (~p^3)
growth that stays far below the remap cost itself.  Absolute numbers are
host-dependent (ours is Python on modern hardware).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.common import emit_table
from repro.apps.workloads import random_capabilities
from repro.partition.arrangement import minimize_cost_redistribution

PROCESSOR_COUNTS = (3, 5, 10, 15, 20)
PAPER_TIMES = {3: 0.00033, 5: 0.00049, 10: 0.0025, 15: 0.0074, 20: 0.017}


def _mcr_instance(p: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    old = random_capabilities(p, rng)
    new = random_capabilities(p, rng)
    return np.arange(p), old, new


def _time_mcr(p: int, repeats: int = 3) -> float:
    arr, old, new = _mcr_instance(p)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        minimize_cost_redistribution(arr, old, new, 10_000)
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.parametrize("p", PROCESSOR_COUNTS)
def test_mcr_time(benchmark, p):
    """pytest-benchmark timing of one MCR call per processor count."""
    arr, old, new = _mcr_instance(p)
    result = benchmark(minimize_cost_redistribution, arr, old, new, 10_000)
    assert sorted(result.tolist()) == list(range(p))


def test_table1_report(benchmark):
    """Regenerate Table 1's rows and check the growth shape."""
    times = benchmark.pedantic(
        lambda: {p: _time_mcr(p) for p in PROCESSOR_COUNTS},
        rounds=1, iterations=1,
    )
    rows = [
        [p, times[p], PAPER_TIMES[p], times[p] / times[PROCESSOR_COUNTS[0]]]
        for p in PROCESSOR_COUNTS
    ]
    emit_table(
        "table1_mcr_time",
        ["Workstations", "Measured (s)", "Paper (s)", "Growth vs p=3"],
        rows,
        title="Table 1: execution time of MinimizeCostRedistribution",
        paper_note="growth ~p^3; MCR stays far below remap cost (Table 2)",
    )
    # Shape: strictly increasing, superlinear overall.
    vals = [times[p] for p in PROCESSOR_COUNTS]
    assert all(b > a for a, b in zip(vals, vals[1:]))
    # From p=3 to p=20, paper grows ~51x; ours must grow far faster than
    # linear (>= 3x would be linear 6.7x; demand clearly superlinear).
    assert vals[-1] / vals[0] > 10.0
    # And MCR remains "small": well under a second even at p=20 reduced scale.
    assert vals[-1] < 2.0
