"""Table 1: execution time of MinimizeCostRedistribution.

Paper (SUN4, C): p=3 -> 0.00033 s, p=5 -> 0.00049 s, p=10 -> 0.0025 s,
p=15 -> 0.0074 s, p=20 -> 0.017 s.  Shape to preserve: superlinear (~p^3)
growth that stays far below the remap cost itself.  Absolute numbers are
host-dependent (ours is Python on modern hardware).

Measurement logic lives in :mod:`repro.experiments.catalog` (experiment
``table1``); this module keeps the pytest shape assertions.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_table
from repro.experiments.catalog import mcr_instance, time_mcr
from repro.partition.arrangement import minimize_cost_redistribution

PROCESSOR_COUNTS = (3, 5, 10, 15, 20)
PAPER_TIMES = {3: 0.00033, 5: 0.00049, 10: 0.0025, 15: 0.0074, 20: 0.017}


@pytest.mark.parametrize("p", PROCESSOR_COUNTS)
def test_mcr_time(benchmark, p):
    """pytest-benchmark timing of one MCR call per processor count."""
    arr, old, new = mcr_instance(p)
    result = benchmark(minimize_cost_redistribution, arr, old, new, 10_000)
    assert sorted(result.tolist()) == list(range(p))


def test_table1_report(benchmark):
    """Regenerate Table 1's rows and check the growth shape."""
    times = benchmark.pedantic(
        lambda: {p: time_mcr(p) for p in PROCESSOR_COUNTS},
        rounds=1, iterations=1,
    )
    rows = [
        [p, times[p], PAPER_TIMES[p], times[p] / times[PROCESSOR_COUNTS[0]]]
        for p in PROCESSOR_COUNTS
    ]
    emit_table(
        "table1_mcr_time",
        ["Workstations", "Measured (s)", "Paper (s)", "Growth vs p=3"],
        rows,
        title="Table 1: execution time of MinimizeCostRedistribution",
        paper_note="growth ~p^3; MCR stays far below remap cost (Table 2)",
    )
    # Shape: strictly increasing, superlinear overall.
    vals = [times[p] for p in PROCESSOR_COUNTS]
    assert all(b > a for a, b in zip(vals, vals[1:]))
    # From p=3 to p=20, paper grows ~51x; ours must grow far faster than
    # linear (>= 3x would be linear 6.7x; demand clearly superlinear).
    assert vals[-1] / vals[0] > 10.0
    # And MCR remains "small": well under a second even at p=20 reduced scale.
    assert vals[-1] < 2.0


if __name__ == "__main__":  # thin shim: run through the unified harness
    import sys

    from repro.cli import main

    sys.exit(main(["bench", "run", "table1"] + sys.argv[1:]))
