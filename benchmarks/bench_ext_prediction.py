"""Extension bench: capability prediction from multiple phases.

Paper footnote 2 suggests predicting resources "based on more than one
previous phase".  Scenario where it matters: a competing load *ramping up*
on one machine.  The last-value controller always lags one check behind; a
trend predictor anticipates the decline and sizes the slow machine's block
for the load it will have, not the load it had.
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_table
from repro.net.cluster import sun4_cluster
from repro.net.loadmodel import RampLoad
from repro.runtime.adaptive import LoadBalanceConfig
from repro.runtime.program import ProgramConfig, run_program

PREDICTORS = (None, "last", "moving-average", "ewma", "trend")


def run_with_predictor(workload, predictor: str | None, *, lb: bool = True):
    # Load on workstation 1 ramps from 0 to 3 competing processes over the
    # first 60% of the (no-LB) run.
    base = run_program(
        workload.graph, sun4_cluster(4),
        ProgramConfig(iterations=workload.iterations), y0=workload.y0,
    )
    ramp_end = 0.6 * base.makespan * 2.0
    cluster = sun4_cluster(4).with_load(
        0, RampLoad(0.0, ramp_end, 0.0, 3.0, n_steps=24)
    )
    cfg = ProgramConfig(
        iterations=workload.iterations,
        initial_capabilities="equal",
        load_balance=(
            LoadBalanceConfig(check_interval=10, predictor=predictor)
            if lb
            else None
        ),
    )
    return run_program(workload.graph, cluster, cfg, y0=workload.y0)


def test_prediction_report(benchmark, workload):
    def compute():
        out = {"no-LB": run_with_predictor(workload, None, lb=False)}
        for pred in PREDICTORS:
            label = pred if pred is not None else "none (paper)"
            out[label] = run_with_predictor(workload, pred)
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [label, rep.makespan, rep.num_remaps]
        for label, rep in results.items()
    ]
    emit_table(
        "ext_prediction",
        ["Predictor", "Time (virt s)", "remaps"],
        rows,
        title="Extension: capability predictors under a ramping load "
              "(footnote 2)",
        paper_note="any LB beats none; multi-phase predictors handle the "
                   "ramp at least as well as last-value",
        float_fmt="{:.4f}",
    )
    no_lb = results["no-LB"].makespan
    for label, rep in results.items():
        if label == "no-LB":
            continue
        assert rep.makespan < no_lb  # all LB variants beat no LB
    # The trend predictor is no worse than the paper's last-phase rule
    # (small tolerance: both remap at the same checkpoints).
    assert results["trend"].makespan <= results["none (paper)"].makespan * 1.10
