"""Table 4: execution time and efficiency in static environments.

Paper (500 iterations of the Fig. 8 loop, 30,269-vertex mesh):

    Workstations | Time (s) | Efficiency
    1            | 97.61    | 1
    1,2          | 55.68    | 0.88
    1,2,3        | 42.27    | 0.77
    1,2,3,4      | 34.06    | 0.72
    1,2,3,4,5    | 31.50    | 0.62

Shapes to preserve: time decreases monotonically as (slower) workstations
are added; the Sec. 4 nonuniform efficiency declines from 1 toward ~0.6.

Measurement logic lives in :mod:`repro.experiments.catalog` (experiment
``table4``); this module keeps the pytest shape assertions.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import emit_table
from repro.experiments.catalog import single_machine_times, static_run
from repro.net.cluster import sun4_cluster
from repro.runtime.efficiency import nonuniform_efficiency
from repro.runtime.kernels import run_sequential
from repro.runtime.program import ProgramConfig, run_program

WS_SETS = (1, 2, 3, 4, 5)
PAPER = {1: (97.61, 1.0), 2: (55.68, 0.88), 3: (42.27, 0.77),
         4: (34.06, 0.72), 5: (31.50, 0.62)}


@pytest.mark.parametrize("p", (1, 3, 5))
def test_static_run_benchmark(benchmark, workload, p):
    """Host-time one full static run per pool size (reduced iterations)."""
    small = ProgramConfig(iterations=5)
    benchmark.pedantic(
        run_program, args=(workload.graph, sun4_cluster(p), small),
        kwargs={"y0": workload.y0}, rounds=1, iterations=1,
    )


def test_table4_report(benchmark, workload):
    def compute():
        # Measured single-machine times give the efficiency denominator,
        # exactly as the paper defines T(p_i).
        singles = single_machine_times(
            workload.graph, workload.y0, workload.iterations, num_ws=5
        )
        reports = {
            p: static_run(workload.graph, workload.y0, workload.iterations, p)
            for p in WS_SETS
        }
        return singles, reports

    singles, reports = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    effs = {}
    for p in WS_SETS:
        rep = reports[p]
        eff = nonuniform_efficiency(rep.makespan, singles[:p])
        effs[p] = eff
        rows.append([
            f"1..{p}", rep.makespan, eff, PAPER[p][0], PAPER[p][1],
        ])
    emit_table(
        "table4_static",
        ["Workstations", "Time (virt s)", "Efficiency", "Paper time", "Paper eff"],
        rows,
        title=f"Table 4: static environments, {workload.iterations} iterations "
              f"of the parallel loop ({workload.label})",
        paper_note="time falls monotonically; efficiency declines ~1 -> ~0.6",
        float_fmt="{:.3f}",
    )
    times = [reports[p].makespan for p in WS_SETS]
    assert all(b < a for a, b in zip(times, times[1:]))
    # Efficiency anchored at 1 for one machine, declining with pool size.
    assert effs[1] == pytest.approx(1.0, abs=1e-6)
    assert all(effs[p + 1] < effs[p] + 1e-9 for p in range(1, 5))
    # Paper: E(5 ws) = 0.62.  At the reduced scale our efficiency lands in
    # the paper's band (~0.64); at REPRO_FULL scale the compute/comm ratio
    # is larger, so the decline is gentler (~0.86) — see docs/benchmarks.md.
    assert 0.45 <= effs[5] <= 0.90

    # The parallel runs compute the right answer.
    oracle = run_sequential(workload.graph, workload.y0, workload.iterations)
    np.testing.assert_allclose(reports[5].values, oracle, atol=1e-9)


if __name__ == "__main__":  # thin shim: run through the unified harness
    import sys

    from repro.cli import main

    sys.exit(main(["bench", "run", "table4"] + sys.argv[1:]))
