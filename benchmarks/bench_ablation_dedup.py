"""Ablation: duplicate-access removal (Sec. 2's first listed optimization).

"Several optimizations can be performed to reduce the amount of
communication, including the removal of duplicate accesses and message
coalescing."  This bench compares gather traffic with the deduplicated
schedule (sort2) against the naive schedule that ships one copy per
*reference*: on a mesh, a boundary vertex is typically referenced by 2-3
of the neighbor rank's vertices, so dedup cuts gather volume accordingly.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import emit_table
from repro.net.cluster import sun4_cluster
from repro.net.spmd import run_spmd
from repro.partition.intervals import partition_list
from repro.partition.rcb import RCBOrdering
from repro.runtime.executor import gather
from repro.runtime.schedule_builders import (
    build_schedule_no_dedup,
    build_schedule_sort2,
)

WS_SETS = (2, 3, 5)
N_GATHERS = 10


def measure(graph, p: int, dedup: bool):
    cluster = sun4_cluster(p)
    part = partition_list(graph.num_vertices, cluster.speeds)
    builder = build_schedule_sort2 if dedup else build_schedule_no_dedup

    def fn(ctx):
        sched = builder(graph, part, ctx.rank)
        lo, hi = part.interval(ctx.rank)
        local = np.zeros(hi - lo)
        t0 = ctx.clock
        for _ in range(N_GATHERS):
            gather(ctx, sched, local)
            ctx.barrier()
        return (ctx.clock - t0) / N_GATHERS, sched.ghost_size

    res = run_spmd(cluster, fn, trace=True)
    per_gather = max(t for t, _ in res.values)
    ghost_total = sum(g for _, g in res.values)
    bytes_total = res.trace.bytes_sent()
    return per_gather, ghost_total, bytes_total


@pytest.fixture(scope="module")
def ordered_graph(workload):
    g = workload.graph
    return g.permute(RCBOrdering()(g))


@pytest.mark.parametrize("dedup", [True, False], ids=["dedup", "no-dedup"])
def test_gather_benchmark(benchmark, ordered_graph, dedup):
    benchmark.pedantic(
        measure, args=(ordered_graph, 3, dedup), rounds=1, iterations=1
    )


def test_dedup_report(benchmark, ordered_graph):
    def compute():
        return {
            p: (measure(ordered_graph, p, True), measure(ordered_graph, p, False))
            for p in WS_SETS
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for p, (with_d, without_d) in results.items():
        rows.append([
            p,
            with_d[1], without_d[1], without_d[1] / max(with_d[1], 1),
            with_d[0], without_d[0],
        ])
    emit_table(
        "ablation_dedup",
        ["Processors", "ghosts dedup", "ghosts naive", "volume ratio",
         "gather s (dedup)", "gather s (naive)"],
        rows,
        title="Ablation: duplicate-access removal (Sec. 2)",
        paper_note="dedup cuts gather volume by the mean boundary "
                   "multiplicity (1.2-1.4x on this sparse mesh; 2-3x on "
                   "full triangulations)",
        float_fmt="{:.4g}",
    )
    for p, (with_d, without_d) in results.items():
        # The naive schedule ships strictly more data and is never faster.
        assert without_d[1] > with_d[1]
        assert without_d[0] >= with_d[0] * 0.99
    # On a mesh the multiplicity is meaningful.  The paper-ratio mesh is
    # sparse (mean degree ~3), so boundary vertices are re-referenced
    # ~1.2-1.4x; denser triangulations reach 2-3x.
    assert all(
        results[p][1][1] / results[p][0][1] > 1.15 for p in WS_SETS
    )
