"""Figure 2: recursive coordinate bisection maps a graph into 1-D space.

The figure shows RCB recursively boxing a point cloud so that contiguous
index ranges are spatially compact.  The quantitative content we regenerate:
the edge cut of contiguous splits of the RCB ordering across a range of
partition counts, versus the identity and random baselines — the "good
partitioning for a wide range of partitions" property of Sec. 3.1.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import emit_table
from repro.graph.metrics import cut_curve, mean_edge_span
from repro.partition.ordering import IdentityOrdering, RandomOrdering
from repro.partition.rcb import RCBOrdering, rcb_order

PART_COUNTS = (2, 4, 8, 16, 32)


@pytest.fixture(scope="module")
def graph(workload):
    return workload.graph


def test_rcb_order_benchmark(benchmark, graph):
    order = benchmark(rcb_order, graph)
    assert order.size == graph.num_vertices


def test_fig2_report(benchmark, graph):
    methods = [RCBOrdering(), IdentityOrdering(), RandomOrdering(seed=0)]

    def compute():
        out = {}
        for m in methods:
            perm = m(graph)
            out[m.name] = (
                mean_edge_span(graph, perm),
                cut_curve(graph, perm, PART_COUNTS),
            )
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [name, span] + [curve[p] for p in PART_COUNTS]
        for name, (span, curve) in results.items()
    ]
    emit_table(
        "fig2_rcb_locality",
        ["Ordering", "Mean 1-D span"] + [f"cut@{p}" for p in PART_COUNTS],
        rows,
        title="Fig. 2: RCB's one-dimensional locality "
              f"(n={graph.num_vertices}, m={graph.num_edges})",
        paper_note="one RCB permutation serves every partition count",
        float_fmt="{:.1f}",
    )
    rcb_span, rcb_curve = results["rcb"]
    rand_span, rand_curve = results["random"]
    # RCB crushes the random baseline at every partition count.
    for p in PART_COUNTS:
        assert rcb_curve[p] < rand_curve[p] / 4
    assert rcb_span < rand_span / 5
    # Cuts grow sub-linearly with partition count (locality at every scale):
    # going from 2 to 32 parts (16x) costs far less than 16x the cut.
    assert rcb_curve[32] < rcb_curve[2] * 16
    # And the cut curve is monotone non-decreasing.
    vals = [rcb_curve[p] for p in PART_COUNTS]
    assert all(b >= a for a, b in zip(vals, vals[1:]))
