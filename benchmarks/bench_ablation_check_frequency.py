"""Ablation: load-balance check frequency.

The paper sets the check every 10 iterations and explicitly leaves
frequency selection "outside the scope of this paper" while noting the
trade-off: frequent checks catch adaptation early but add overhead.  This
bench sweeps the interval on the Table-5 environment.

Registered as experiment ``ablation_check_frequency`` in
:mod:`repro.experiments.catalog`; this module keeps the pytest assertions.
"""

from __future__ import annotations

from benchmarks.common import emit_table
from repro.experiments.catalog import adaptive_run

INTERVALS = (5, 10, 20, 40)


def run_with_interval(workload, interval: int | None):
    return adaptive_run(
        workload.graph, workload.y0, workload.iterations, 4,
        lb=interval is not None,
        check_interval=interval if interval else 10,
    )


def test_check_frequency_report(benchmark, workload):
    def compute():
        out = {None: run_with_interval(workload, None)}
        for interval in INTERVALS:
            out[interval] = run_with_interval(workload, interval)
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for interval, rep in results.items():
        stats = rep.rank_stats[0]
        rows.append([
            "no LB" if interval is None else interval,
            rep.makespan,
            stats.num_checks,
            stats.num_remaps,
            rep.lb_check_time,
            rep.remap_time,
        ])
    emit_table(
        "ablation_check_frequency",
        ["Check interval", "Time (virt s)", "checks", "remaps",
         "check cost", "remap cost"],
        rows,
        title="Ablation: LB check frequency on the Table-5 environment",
        paper_note="paper fixes interval=10 and defers tuning; any "
                    "reasonable interval beats no LB here",
        float_fmt="{:.4f}",
    )
    no_lb = results[None].makespan
    for interval in INTERVALS:
        rep = results[interval]
        # Any checking interval that fires at least once beats no LB.
        if rep.rank_stats[0].num_remaps >= 1:
            assert rep.makespan < no_lb
        # Check overhead stays a small fraction of the run.
        assert rep.lb_check_time < 0.1 * rep.makespan
    # Earlier detection (interval 5) is at least as good as very late
    # detection (interval = 2/3 of the run).
    assert results[5].makespan <= results[40].makespan * 1.05


if __name__ == "__main__":  # thin shim: run through the unified harness
    import sys

    from repro.cli import main

    sys.exit(main(["bench", "run", "ablation_check_frequency"] + sys.argv[1:]))
