#!/usr/bin/env python
"""Check that intra-repo markdown links resolve.

Scans every ``*.md`` file in the repository (skipping build/VCS
directories), extracts inline links ``[text](target)``, and verifies that
relative targets point at files or directories that exist.  External
schemes (http/https/mailto) and pure in-page anchors (``#...``) are
skipped; a fragment on a relative link is stripped before checking.

Exit status: 0 if all links resolve, 1 otherwise (broken links listed on
stderr).  Used by the docs job in CI and by tests/test_docs_links.py.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Directories never scanned (and never valid link targets from our docs).
SKIP_DIRS = {".git", ".hypothesis", ".pytest_cache", ".benchmarks",
             "__pycache__", "node_modules", ".venv", "venv"}

#: ``[text](target)`` inline links; images share the syntax via ``![``.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes that point outside the repository.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_file(path: Path, root: Path) -> list[str]:
    """Return 'file:target' strings for every broken relative link."""
    broken = []
    text = path.read_text(encoding="utf-8")
    # Drop fenced code blocks: shell snippets legitimately contain
    # parenthesized text that is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            broken.append(f"{path.relative_to(root)}: {target} (escapes repo)")
            continue
        if not resolved.exists():
            broken.append(f"{path.relative_to(root)}: {target}")
    return broken


def check_repo(root: Path) -> list[str]:
    broken: list[str] = []
    for path in iter_markdown_files(root):
        broken.extend(check_file(path, root))
    return broken


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parents[1]
    broken = check_repo(root)
    if broken:
        print(f"{len(broken)} broken markdown link(s):", file=sys.stderr)
        for item in broken:
            print(f"  {item}", file=sys.stderr)
        return 1
    count = sum(1 for _ in iter_markdown_files(root))
    print(f"ok: all intra-repo links resolve across {count} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
