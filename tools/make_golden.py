#!/usr/bin/env python
"""Regenerate tests/golden/schedule_semantics.json.

Run from the repo root after an *intentional* schedule-semantics change:

    PYTHONPATH=src python tools/make_golden.py

then review the diff — every changed number is a behavior change that
``tests/test_golden_artifacts.py`` would otherwise flag.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / "golden"

STRUCTURAL = (
    "n_vertices",
    "n_edges",
    "ghost_total",
    "send_volume_total",
    "send_messages_total",
)


def build_golden() -> dict:
    """Compute the pinned facts (shared with the regression test)."""
    import numpy as np

    from repro.experiments.catalog import _workload, adaptive_run
    from repro.experiments.runner import run_experiment
    from repro.net.cluster import SUN4_SPEEDS, uniform_cluster
    from repro.net.loadmodel import MembershipEvent, MembershipTrace
    from repro.partition.arrangement import minimize_cost_redistribution
    from repro.partition.intervals import partition_list
    from repro.runtime.adaptive import transfer_plan_summary
    from repro.runtime.program import ProgramConfig, run_program

    artifact, _ = run_experiment(
        "scale-epoch", quick=True, overrides={"tier": "10k"}, results_dir=None
    )
    epoch = [
        {
            "params": run["params"],
            "structural": {k: run["metrics"][k] for k in STRUCTURAL},
        }
        for run in artifact["runs"]
    ]

    graph, y0 = _workload(800, 1995)
    report = adaptive_run(graph, y0, 20, 3, lb=True, check_interval=5)
    stats = report.rank_stats[0]
    remap = {
        "num_remaps": int(stats.num_remaps),
        "num_checks": int(stats.num_checks),
        "final_sizes": [int(s) for s in report.partition_final.sizes()],
    }

    # The packed-exchange transfer plan for the paper's Fig. 5 capability
    # change (Sec. 3.4), under the MCR arrangement: slabs, per-peer packed
    # message count, and each message's wire size for 2 fields + identity.
    old_caps = [0.27, 0.18, 0.34, 0.07, 0.14]
    new_caps = [0.10, 0.13, 0.29, 0.24, 0.24]
    arrangement = minimize_cost_redistribution(
        list(range(5)), old_caps, new_caps, 100
    )
    plan = transfer_plan_summary(
        partition_list(100, old_caps),
        partition_list(100, new_caps, arrangement),
        num_fields=2,
    )

    # Elastic drain plan: the SUN4 5-pool loses workstation 1, survivors
    # resplit by base speed under the MCR arrangement — the repartition-
    # onto-a-different-sized-active-set transfer pattern of ISSUE 4, with
    # the departing rank's whole block draining out.
    speeds = np.asarray(SUN4_SPEEDS, dtype=np.float64)
    survivors = np.where(
        np.arange(5) == 1, 0.0, speeds
    )
    elastic_arrangement = minimize_cost_redistribution(
        list(range(5)),
        speeds / speeds.sum(),
        survivors / survivors.sum(),
        200,
    )
    elastic_plan = transfer_plan_summary(
        partition_list(200, speeds),
        partition_list(200, survivors, elastic_arrangement),
        num_fields=2,
    )

    # An end-to-end elastic run's decisions (virtual metrics only): one
    # join adopted, one departure drained, on the reduced paper mesh.
    graph, y0 = _workload(800, 1995)
    trace = MembershipTrace(
        4,
        [
            MembershipEvent(0.01, "join", 3),
            MembershipEvent(0.05, "leave", 0),
        ],
        initially_inactive=[3],
    )
    elastic_report = run_program(
        graph,
        uniform_cluster(4),
        ProgramConfig(
            iterations=20,
            membership=trace,
            load_balance="centralized",
            initial_capabilities="equal",
        ),
        y0=y0,
    )
    elastic_run = {
        "num_remaps": int(elastic_report.num_remaps),
        "membership_events": int(elastic_report.membership_events),
        "final_sizes": [
            int(s) for s in elastic_report.partition_final.sizes()
        ],
    }

    # A resilience run: workstation 1 dies *unannounced* at a fixed
    # virtual time; the session rolls back to the last interval:4 epoch,
    # the partner restores the lost block, and the run finishes on the
    # survivors.  Virtual-decision facts only (ISSUE 5).
    fail_trace = MembershipTrace(4, [MembershipEvent(0.04, "fail", 1)])
    resilience_report = run_program(
        graph,
        uniform_cluster(4),
        ProgramConfig(
            iterations=20,
            membership=fail_trace,
            load_balance="centralized",
            initial_capabilities="equal",
            checkpoint="interval:4",
        ),
        y0=y0,
    )
    resilience_run = {
        "num_checkpoints": int(resilience_report.num_checkpoints),
        "num_rollbacks": int(resilience_report.num_rollbacks),
        "membership_events": int(resilience_report.membership_events),
        "num_remaps": int(resilience_report.num_remaps),
        "final_sizes": [
            int(s) for s in resilience_report.partition_final.sizes()
        ],
    }

    return {
        "comment": "Structural schedule facts, remap decisions, and the "
        "packed-exchange transfer plan pinned by "
        "tests/test_golden_artifacts.py; regenerate with "
        "tools/make_golden.py if semantics intentionally change.",
        "scale_epoch_structural": epoch,
        "remap_decisions": remap,
        "transfer_plan": plan,
        "elastic_transfer_plan": elastic_plan,
        "elastic_run": elastic_run,
        "resilience_run": resilience_run,
    }


def build_golden_trace() -> dict:
    """The pinned Chrome trace of one small traced run.

    The export uses the virtual timebase and strips host wall clocks
    (``include_wall=False``), so every byte — span nesting, per-rank
    ``seq`` order, virtual timestamps — is a deterministic function of
    the program and stays stable across machines.
    """
    from repro.experiments.catalog import _workload
    from repro.net.cluster import uniform_cluster
    from repro.obs import chrome_trace
    from repro.runtime.program import ProgramConfig, run_program

    graph, y0 = _workload(800, 1995)
    report = run_program(
        graph,
        uniform_cluster(3),
        ProgramConfig(iterations=8, checkpoint="interval:3", trace=True),
        y0=y0,
    )
    return chrome_trace(
        report.trace,
        timebase="clock",
        include_wall=False,
        metadata={"fixture": "golden", "command": "tools/make_golden.py"},
    )


def main() -> int:
    golden = build_golden()
    GOLDEN_PATH.mkdir(parents=True, exist_ok=True)
    out = GOLDEN_PATH / "schedule_semantics.json"
    out.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    print(f"wrote {out}")
    trace_out = GOLDEN_PATH / "chrome_trace.json"
    trace_out.write_text(
        json.dumps(build_golden_trace(), indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {trace_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
